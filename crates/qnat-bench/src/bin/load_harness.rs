//! Open-loop load harness for the HTTP front door (ISSUE 8 tentpole).
//!
//! Unlike the closed-loop throughput benches (which wait for each
//! response before issuing the next request, so an overloaded server
//! conveniently slows its own offered load), this harness fires
//! requests on a **precomputed arrival schedule** — Poisson arrivals
//! for the first half, on/off bursts for the second — and measures
//! latency **from the scheduled arrival time**. Falling behind the
//! schedule therefore shows up as tail latency instead of vanishing
//! into a slower request rate: the open-loop discipline.
//!
//! The traffic mix is deliberately hostile: ~70% interactive submits,
//! ~20% bulk submits, ~10% malformed raw-socket requests, with the
//! engine's backends yanked (pause/resume churn) twice mid-run. The
//! run reports goodput and p50/p90/p99/p999 per class to
//! `results/BENCH_load.json` and enforces two SLO gates:
//!
//! 1. **Flat tails under overload** — p99 of the submit-response time
//!    (admission *or* refusal) stays under [`SLO_P99_MS`]; shedding
//!    with 429/503 must be fast, not a queue to wait in.
//! 2. **Keep-alive pays** — the pooled keep-alive client sustains
//!    ≥ [`KEEPALIVE_MIN_SPEEDUP`]× the request rate of the
//!    connection-per-call client on the same cheap endpoint.
//!
//! Seeded end to end (`splitmix64` discipline, no wall-clock entropy in
//! the schedule), so two runs offer byte-identical load.

use qnat_bench::stats::{latency_tails_ms, LatencyTails};
use qnat_core::batch::BatchJob;
use qnat_core::executor::{splitmix64, ResilientExecutor, RetryPolicy, ThreadSleeper};
use qnat_json::Json;
use qnat_noise::backend::{BackendError, SimulatorBackend};
use qnat_noise::fault::{FaultSpec, FaultyBackend};
use qnat_serve::engine::{Lane, LaneConfig, ServeConfig, ServeEngine};
use qnat_sim::circuit::Circuit;
use qnat_sim::gate::Gate;
use qnat_transport::{ClientError, TransportClient, TransportConfig, TransportServer};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Deterministic seed for the schedule, the traffic mix and the engine.
const SEED: u64 = 0x10AD;
/// Open-loop arrivals in the Poisson segment.
const POISSON_ARRIVALS: usize = 1_200;
/// Poisson segment offered rate, arrivals/sec.
const POISSON_RATE: f64 = 700.0;
/// Bursty segment: bursts × size, intra-burst spacing, inter-burst gap.
const BURSTS: usize = 24;
const BURST_SIZE: usize = 75;
const BURST_SPACING_MS: f64 = 0.2;
const BURST_GAP_MS: f64 = 120.0;
/// Injector threads draining the shared schedule.
const INJECTORS: usize = 8;
/// SLO gate: p99 submit-response time under overload, ms.
const SLO_P99_MS: f64 = 250.0;
/// SLO gate: pooled keep-alive vs connection-per-call speedup floor.
const KEEPALIVE_MIN_SPEEDUP: f64 = 2.0;
/// Round trips per arm of the keep-alive microbench.
const KEEPALIVE_CALLS: usize = 300;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Class {
    Interactive,
    Bulk,
    Malformed,
}

/// One scheduled arrival: when (offset from run start) and what.
struct Arrival {
    at: Duration,
    class: Class,
}

/// Uniform f64 in [0, 1) off the repo's standard mixer.
fn unit(x: u64) -> f64 {
    (splitmix64(x) >> 11) as f64 / (1u64 << 53) as f64
}

/// The full open-loop schedule: Poisson arrivals, then on/off bursts.
/// Pure in `SEED`, so every run offers identical load.
fn build_schedule() -> Vec<Arrival> {
    let mut schedule = Vec::with_capacity(POISSON_ARRIVALS + BURSTS * BURST_SIZE);
    let mut t = 0.0f64; // seconds
    for i in 0..POISSON_ARRIVALS {
        // Exponential inter-arrival: -ln(1-u)/rate.
        let u = unit(SEED ^ splitmix64(i as u64));
        t += -(1.0 - u).ln() / POISSON_RATE;
        schedule.push(Arrival {
            at: Duration::from_secs_f64(t),
            class: class_of(i),
        });
    }
    // Bursty segment starts after a short breather.
    t += 0.2;
    let mut i = POISSON_ARRIVALS;
    for _ in 0..BURSTS {
        for _ in 0..BURST_SIZE {
            t += BURST_SPACING_MS / 1e3;
            schedule.push(Arrival {
                at: Duration::from_secs_f64(t),
                class: class_of(i),
            });
            i += 1;
        }
        t += BURST_GAP_MS / 1e3;
    }
    schedule
}

/// Deterministic 70/20/10 interactive/bulk/malformed mix.
fn class_of(i: usize) -> Class {
    match splitmix64(SEED ^ splitmix64(0xC1A5 ^ i as u64)) % 10 {
        0..=6 => Class::Interactive,
        7 | 8 => Class::Bulk,
        _ => Class::Malformed,
    }
}

fn job_for(i: usize) -> BatchJob {
    let mut c = Circuit::new(2);
    c.push(Gate::ry(0, 0.07 * (i % 64) as f64 + 0.1));
    c.push(Gate::cx(0, 1));
    BatchJob::exact(c)
}

/// The throughput benches' standard fault model: flaky primary, clean
/// fallback, real wall-clock backoff — service times are milliseconds,
/// so the burst segment genuinely overruns the 4-worker capacity.
fn factory(_job: u64, seed: u64) -> Result<ResilientExecutor, BackendError> {
    let policy = RetryPolicy {
        max_attempts: 4,
        base_backoff_ms: 3,
        max_backoff_ms: 12,
        ..RetryPolicy::default()
    };
    Ok(ResilientExecutor::with_fallback(
        Box::new(FaultyBackend::new(
            SimulatorBackend::new(seed),
            FaultSpec::transient(0.5, seed),
        )),
        Box::new(SimulatorBackend::new(seed ^ 0x5eed)),
        policy,
    )
    .with_sleeper(Box::new(ThreadSleeper::default())))
}

/// What one arrival came back as.
#[derive(Debug, Clone, Copy)]
struct Sample {
    class: Class,
    /// Response time measured from the *scheduled* arrival.
    latency: Duration,
    /// HTTP-equivalent status (200 accept, 429/503 refusal, 400
    /// malformed, 0 = transport error).
    status: u16,
}

/// Fires one malformed request on a raw socket and reads the refusal.
fn fire_malformed(addr: SocketAddr, i: usize) -> u16 {
    let Ok(mut stream) = TcpStream::connect(addr) else {
        return 0;
    };
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let garbage: &[u8] = match i % 3 {
        0 => b"GARBAGE\r\n\r\n",
        1 => b"POST /v1/jobs HTTP/1.1\r\ncontent-length: 9\r\n\r\nnot json!",
        _ => b"POST /v1/jobs HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\nZZ\r\n",
    };
    if stream.write_all(garbage).is_err() {
        return 0;
    }
    let mut buf = [0u8; 64];
    match stream.read(&mut buf) {
        Ok(n) if n >= 12 => String::from_utf8_lossy(&buf[9..12]).parse().unwrap_or(0),
        _ => 0,
    }
}

fn status_of(result: &Result<u64, ClientError>) -> u16 {
    match result {
        Ok(_) => 200,
        Err(ClientError::Status { status, .. }) => *status,
        Err(_) => 0,
    }
}

/// Runs the open-loop schedule against a live front door. Returns one
/// sample per arrival.
fn run_open_loop(server: &TransportServer, schedule: &[Arrival]) -> Vec<Sample> {
    let addr = server.local_addr();
    let next = AtomicUsize::new(0);
    let samples = Mutex::new(Vec::with_capacity(schedule.len()));
    let churn_done = std::sync::atomic::AtomicBool::new(false);
    // One run clock shared by injectors (schedule offsets) and the
    // churn thread (event offsets).
    let start = Instant::now();

    std::thread::scope(|scope| {
        // Backend churn: yank every backend twice mid-run (the engine
        // pauses, queues build, backpressure engages), then restore.
        scope.spawn(|| {
            for at_ms in [1_500u64, 3_200] {
                let target = Duration::from_millis(at_ms);
                while start.elapsed() < target {
                    if churn_done.load(Ordering::SeqCst) {
                        return;
                    }
                    std::thread::sleep(Duration::from_millis(25));
                }
                if churn_done.load(Ordering::SeqCst) {
                    return;
                }
                server.engine().pause();
                std::thread::sleep(Duration::from_millis(200));
                server.engine().resume();
            }
        });

        let handles: Vec<_> = (0..INJECTORS)
            .map(|_| {
                let next = &next;
                let samples = &samples;
                scope.spawn(move || {
                    // One pooled keep-alive client per injector: its
                    // connection stays hot across the whole run.
                    let client =
                        TransportClient::new(addr).with_timeout(Duration::from_secs(5));
                    loop {
                        let i = next.fetch_add(1, Ordering::SeqCst);
                        let Some(arrival) = schedule.get(i) else {
                            return;
                        };
                        let due = start + arrival.at;
                        let now = Instant::now();
                        if due > now {
                            std::thread::sleep(due - now);
                        }
                        let status = match arrival.class {
                            Class::Interactive => {
                                status_of(&client.submit(&job_for(i), Lane::Interactive))
                            }
                            Class::Bulk => status_of(&client.submit(&job_for(i), Lane::Bulk)),
                            Class::Malformed => fire_malformed(addr, i),
                        };
                        let latency = due.elapsed();
                        samples.lock().expect("sampler lock").push(Sample {
                            class: arrival.class,
                            latency,
                            status,
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("injector thread");
        }
        churn_done.store(true, Ordering::SeqCst);
    });
    samples.into_inner().expect("sampler lock")
}

/// The keep-alive microbench: the same cheap endpoint hammered by the
/// pooled client and by the connection-per-call client.
fn keepalive_speedup() -> (f64, f64, f64) {
    let engine = ServeEngine::new(
        ServeConfig {
            workers: 1,
            seed: SEED,
            ..ServeConfig::default()
        },
        |_job, seed| -> Result<ResilientExecutor, BackendError> {
            Ok(ResilientExecutor::new(
                Box::new(SimulatorBackend::new(seed)),
                RetryPolicy::default(),
            ))
        },
    );
    let server = TransportServer::bind("127.0.0.1:0", TransportConfig::default(), engine)
        .expect("bind keep-alive bench server");
    let addr = server.local_addr();

    let rate = |client: &TransportClient| -> f64 {
        // Warm-up round trip outside the timed window.
        client.healthz().expect("health");
        let start = Instant::now();
        for _ in 0..KEEPALIVE_CALLS {
            client.healthz().expect("health");
        }
        KEEPALIVE_CALLS as f64 / start.elapsed().as_secs_f64()
    };
    let pooled = rate(&TransportClient::new(addr).with_timeout(Duration::from_secs(5)));
    let per_call = rate(
        &TransportClient::new(addr)
            .with_timeout(Duration::from_secs(5))
            .without_keep_alive(),
    );
    server.shutdown();
    (pooled, per_call, pooled / per_call)
}

fn tails_json(t: &LatencyTails) -> Json {
    Json::obj([
        ("p50", Json::Num(t.p50)),
        ("p90", Json::Num(t.p90)),
        ("p99", Json::Num(t.p99)),
        ("p999", Json::Num(t.p999)),
    ])
}

fn class_tails(samples: &[Sample], class: Class) -> (usize, LatencyTails) {
    let mut lat: Vec<Duration> = samples
        .iter()
        .filter(|s| s.class == class)
        .map(|s| s.latency)
        .collect();
    (lat.len(), latency_tails_ms(&mut lat))
}

fn main() {
    // Arm 1: keep-alive has to pay for itself before the storm.
    let (pooled_rps, per_call_rps, speedup) = keepalive_speedup();
    println!(
        "keep-alive: pooled {pooled_rps:.0} req/s vs per-call {per_call_rps:.0} req/s \
         → {speedup:.2}x"
    );

    // Arm 2: the open-loop storm.
    let engine = ServeEngine::new(
        ServeConfig {
            workers: 4,
            seed: SEED,
            interactive: LaneConfig::rejecting(16),
            bulk: LaneConfig::shedding(64),
            ..ServeConfig::default()
        },
        factory,
    );
    let server = TransportServer::bind(
        "127.0.0.1:0",
        TransportConfig {
            http_workers: INJECTORS + 2,
            request_deadline_ms: 10_000,
            ..TransportConfig::default()
        },
        engine,
    )
    .expect("bind load server");

    let schedule = build_schedule();
    let offered = schedule.len();
    let span = schedule.last().expect("non-empty schedule").at;
    println!(
        "open-loop: {offered} arrivals over {:.1}s (poisson {POISSON_RATE:.0}/s then \
         {BURSTS}x{BURST_SIZE} bursts), {INJECTORS} injectors, backend churn at 1.5s and 3.2s",
        span.as_secs_f64()
    );
    let run_start = Instant::now();
    let samples = run_open_loop(&server, &schedule);
    let elapsed = run_start.elapsed();

    let engine_stats = server.engine().stats();
    let transport = server.metrics();
    let accepted = samples.iter().filter(|s| s.status == 200).count();
    let refused_429 = samples.iter().filter(|s| s.status == 429).count();
    let refused_503 = samples.iter().filter(|s| s.status == 503).count();
    let malformed_400 = samples.iter().filter(|s| s.status == 400).count();
    let errors = samples.iter().filter(|s| s.status == 0).count();
    let goodput = engine_stats.completed_ok as f64 / elapsed.as_secs_f64();

    let mut all: Vec<Duration> = samples.iter().map(|s| s.latency).collect();
    let all_tails = latency_tails_ms(&mut all);
    let (n_int, int_tails) = class_tails(&samples, Class::Interactive);
    let (n_bulk, bulk_tails) = class_tails(&samples, Class::Bulk);
    let (n_mal, mal_tails) = class_tails(&samples, Class::Malformed);

    println!(
        "responses: {accepted} accepted, {refused_429}x429, {refused_503}x503, \
         {malformed_400}x400, {errors} transport errors; engine goodput {goodput:.0} ok/s"
    );
    println!(
        "latency ms (from scheduled arrival): all p50 {:.1} p99 {:.1} p999 {:.1}; \
         interactive p99 {:.1}; bulk p99 {:.1}; malformed p99 {:.1}",
        all_tails.p50, all_tails.p99, all_tails.p999, int_tails.p99, bulk_tails.p99,
        mal_tails.p99
    );
    println!(
        "transport: {} conns accepted, {} keep-alive reuses, {} shed, {} served, \
         429={} 503={} 400={} 408={}",
        transport.connections_accepted,
        transport.keepalive_reuses,
        transport.connections_shed,
        transport.requests_served,
        transport.rejected_429,
        transport.unavailable_503,
        transport.bad_requests_400,
        transport.timeouts_408,
    );

    let doc = Json::obj([
        ("bench", Json::Str("load_harness".into())),
        ("seed", Json::Num(SEED as f64)),
        (
            "offered",
            Json::obj([
                ("arrivals", Json::Num(offered as f64)),
                ("poisson_rate_per_sec", Json::Num(POISSON_RATE)),
                ("bursts", Json::Num(BURSTS as f64)),
                ("burst_size", Json::Num(BURST_SIZE as f64)),
                ("schedule_span_sec", Json::Num(span.as_secs_f64())),
                ("injectors", Json::Num(INJECTORS as f64)),
            ]),
        ),
        (
            "responses",
            Json::obj([
                ("accepted", Json::Num(accepted as f64)),
                ("refused_429", Json::Num(refused_429 as f64)),
                ("refused_503", Json::Num(refused_503 as f64)),
                ("malformed_400", Json::Num(malformed_400 as f64)),
                ("transport_errors", Json::Num(errors as f64)),
            ]),
        ),
        ("goodput_ok_per_sec", Json::Num(goodput)),
        (
            "latency_ms",
            Json::obj([
                ("all", tails_json(&all_tails)),
                (
                    "interactive",
                    Json::obj([
                        ("n", Json::Num(n_int as f64)),
                        ("tails", tails_json(&int_tails)),
                    ]),
                ),
                (
                    "bulk",
                    Json::obj([
                        ("n", Json::Num(n_bulk as f64)),
                        ("tails", tails_json(&bulk_tails)),
                    ]),
                ),
                (
                    "malformed",
                    Json::obj([
                        ("n", Json::Num(n_mal as f64)),
                        ("tails", tails_json(&mal_tails)),
                    ]),
                ),
            ]),
        ),
        (
            "keepalive",
            Json::obj([
                ("pooled_req_per_sec", Json::Num(pooled_rps)),
                ("per_call_req_per_sec", Json::Num(per_call_rps)),
                ("speedup", Json::Num(speedup)),
            ]),
        ),
        (
            "transport",
            qnat_transport::wire::transport_snapshot_to_json(&transport),
        ),
        (
            "slo",
            Json::obj([
                ("p99_limit_ms", Json::Num(SLO_P99_MS)),
                ("p99_ms", Json::Num(all_tails.p99)),
                ("keepalive_min_speedup", Json::Num(KEEPALIVE_MIN_SPEEDUP)),
                ("keepalive_speedup", Json::Num(speedup)),
            ]),
        ),
    ]);
    let results = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&results).expect("create results dir");
    std::fs::write(results.join("BENCH_load.json"), doc.to_json_pretty())
        .expect("write results/BENCH_load.json");
    println!("wrote results/BENCH_load.json");

    drop(server); // queued bulk jobs are discarded with the engine

    // The gates — after the artifact is on disk, so a failed run still
    // leaves the evidence.
    assert!(
        refused_429 + refused_503 > 0,
        "the storm must actually overload the engine (no 429/503 seen) — raise the burst rate"
    );
    assert!(
        accepted > 0 && goodput > 0.0,
        "goodput collapsed to zero under overload"
    );
    assert!(
        malformed_400 > 0,
        "malformed arrivals must be answered 400, got none"
    );
    assert_eq!(errors, 0, "no arrival may die with a transport error");
    assert!(
        all_tails.p99 <= SLO_P99_MS,
        "SLO violated: p99 {:.1} ms > {SLO_P99_MS} ms under overload — \
         backpressure is queueing instead of shedding",
        all_tails.p99
    );
    assert!(
        speedup >= KEEPALIVE_MIN_SPEEDUP,
        "keep-alive speedup {speedup:.2}x below the {KEEPALIVE_MIN_SPEEDUP}x floor"
    );
    println!("SLO gates passed: p99 {:.1} ms ≤ {SLO_P99_MS} ms, keep-alive {speedup:.2}x ≥ {KEEPALIVE_MIN_SPEEDUP}x", all_tails.p99);
}
