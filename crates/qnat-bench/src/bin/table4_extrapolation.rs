//! **Table 4** — compatibility with zero-noise extrapolation.
//!
//! A 2-block model with 3-layer blocks is trained with normalization; at
//! deployment the first block's trainable layers are repeated 1×..4×
//! (multiplying the noise), the per-qubit outcome std is measured at each
//! depth and linearly extrapolated to depth 0. "Extrapolation +
//! Normalization" centers outcomes with the batch mean but scales them with
//! the *extrapolated noise-free std* instead of the contracted batch std —
//! restoring the per-qubit feature scale the next block saw in training
//! (plain batch normalization would erase that information by forcing unit
//! variance).

use qnat_bench::harness::*;
use qnat_core::head::apply_head;
use qnat_core::metrics::accuracy;
use qnat_core::mitigate::{batch_std, extrapolate_std};
use qnat_core::normalize::{normalize_batch, NormStats};
use qnat_core::model::Qnn;
use qnat_data::dataset::{Dataset, Task};
use qnat_noise::emulator::HardwareEmulator;
use qnat_noise::presets;
use qnat_sim::circuit::Circuit;

/// Binds block `bi` with its ansatz layers repeated `reps` times
/// (same parameters each repetition).
fn repeated_block_circuit(qnn: &Qnn, bi: usize, inputs: &[f64], reps: usize) -> Circuit {
    let block = &qnn.blocks()[bi];
    let n_enc_gates = block.encoder.n_features();
    let gates = block.logical.gates();
    let mut c = Circuit::new(block.logical.n_qubits());
    for g in &gates[..n_enc_gates] {
        c.push(*g);
    }
    for _ in 0..reps {
        for g in &gates[n_enc_gates..] {
            c.push(*g);
        }
    }
    let mut params = block.encoder.angles(inputs);
    for _ in 0..reps {
        params.extend_from_slice(qnn.block_params(bi));
    }
    c.set_parameters(&params);
    c
}

/// Block-1 outcomes of the whole test set at a given repetition count.
fn block1_outputs(
    qnn: &Qnn,
    emulator: &HardwareEmulator,
    ds: &Dataset,
    reps: usize,
) -> Vec<Vec<f64>> {
    ds.test
        .iter()
        .map(|s| {
            let c = repeated_block_circuit(qnn, 0, &s.features, reps);
            emulator.expect_all_z(&c).expect("emulation succeeds")
        })
        .collect()
}

fn main() {
    let cfg = RunConfig::default();
    let device = presets::yorktown();
    let emulator = HardwareEmulator::new(device.clone());
    let mut rows = Vec::new();
    for task in [Task::Mnist4, Task::Fashion4] {
        let arch = ArchSpec::u3cu3(2, 3);
        let (qnn, ds, _) = train_arm(task, arch, &device, Arm::Norm, &cfg);
        let labels: Vec<usize> = ds.test.iter().map(|s| s.label).collect();

        // Shared second-block evaluation given processed block-1 outputs.
        let finish = |block1: &[Vec<f64>]| -> f64 {
            let logits: Vec<Vec<f64>> = block1
                .iter()
                .map(|row| {
                    let c = {
                        let block = &qnn.blocks()[1];
                        let mut c = block.logical.clone();
                        let mut p = block.encoder.angles(row);
                        p.extend_from_slice(qnn.block_params(1));
                        c.set_parameters(&p);
                        c
                    };
                    emulator.expect_all_z(&c).expect("emulation succeeds")
                })
                .collect();
            accuracy(&apply_head(&logits, qnn.config().n_classes), &labels)
        };

        // Arm A: normalization only.
        let mut norm_only = block1_outputs(&qnn, &emulator, &ds, 1);
        normalize_batch(&mut norm_only);
        let acc_norm = finish(&norm_only);

        // Arm B: extrapolation + normalization — center with the batch
        // mean, scale with the extrapolated noise-free std.
        let scales = [1.0, 2.0, 3.0, 4.0];
        let stds: Vec<Vec<f64>> = scales
            .iter()
            .map(|&k| batch_std(&block1_outputs(&qnn, &emulator, &ds, k as usize)))
            .collect();
        let target = match extrapolate_std(&scales, &stds) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("table4: std extrapolation failed for {}: {e}", task.name());
                std::process::exit(1);
            }
        };
        let mut extrap = block1_outputs(&qnn, &emulator, &ds, 1);
        let stats = NormStats::from_batch(&extrap);
        // Match the *noise-free* per-qubit scale: divide the centered
        // outcomes by σ_batch and multiply by σ_extrap/σ_batch-at-depth-1,
        // i.e. scale each qubit so its std equals σ_extrap/σ_ideal-unit.
        for row in &mut extrap {
            for (j, v) in row.iter_mut().enumerate() {
                *v = (*v - stats.mean[j]) / stats.std[j] * (target[j] / stats.std[j]).min(3.0);
            }
        }
        let acc_extrap = finish(&extrap);

        rows.push(vec![
            task.name().to_string(),
            format!("{acc_norm:.2}"),
            format!("{acc_extrap:.2}"),
        ]);
    }
    print_table(
        "Table 4: normalization vs normalization + zero-noise extrapolation",
        &["task", "Normalization only", "Norm. + Extrapolation"],
        &rows,
    );
    println!("\nExpected shape (paper Table 4): extrapolation adds a small further");
    println!("gain (~2 points), demonstrating orthogonality to QuantumNAT.");
}
