//! # qnat-bench — experiment harness for the QuantumNAT reproduction
//!
//! One binary per paper table/figure (see DESIGN.md §4) plus criterion
//! performance benches. The shared four-arm ablation protocol lives in
//! [`harness`].

#![warn(missing_docs)]

pub mod harness;
