//! # qnat-bench — experiment harness for the QuantumNAT reproduction
//!
//! One binary per paper table/figure (see DESIGN.md §4) plus criterion
//! performance benches. The shared four-arm ablation protocol lives in
//! [`harness`]; the throughput benches' guarded latency percentiles live
//! in [`stats`].

#![warn(missing_docs)]

pub mod harness;
pub mod stats;
