//! Shared latency statistics for the throughput benches.
//!
//! Extracted from `benches/serve_throughput.rs` (ISSUE 5 satellite): the
//! original inline percentile computed `sorted.len() - 1` and panicked on
//! an empty sample via usize underflow. Both the serving and transport
//! benches now share this guarded helper.

use std::time::Duration;

/// Nearest-rank percentile of an **ascending-sorted** latency sample, in
/// milliseconds. `p` is on the 0–100 scale (clamped). Returns `None` for
/// an empty sample instead of underflowing.
pub fn percentile_ms(sorted: &[Duration], p: f64) -> Option<f64> {
    let last = sorted.len().checked_sub(1)?;
    let frac = (p / 100.0).clamp(0.0, 1.0);
    let idx = (frac * last as f64).round() as usize;
    Some(sorted[idx.min(last)].as_secs_f64() * 1e3)
}

/// The p50/p90/p99 triple the bench reports write, from an **unsorted**
/// sample (sorted internally). All zeros for an empty sample.
pub fn latency_percentiles_ms(samples: &mut [Duration]) -> (f64, f64, f64) {
    samples.sort();
    (
        percentile_ms(samples, 50.0).unwrap_or(0.0),
        percentile_ms(samples, 90.0).unwrap_or(0.0),
        percentile_ms(samples, 99.0).unwrap_or(0.0),
    )
}

/// The tail quadruple the load harness gates on, in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencyTails {
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// 99.9th percentile — needs ≥1000 samples to mean more than the
    /// max; on shorter slices nearest-rank makes it exactly the max,
    /// which is the honest reading.
    pub p999: f64,
}

/// p50/p90/p99/p999 from an **unsorted** sample (sorted internally).
/// All zeros for an empty sample.
pub fn latency_tails_ms(samples: &mut [Duration]) -> LatencyTails {
    samples.sort();
    LatencyTails {
        p50: percentile_ms(samples, 50.0).unwrap_or(0.0),
        p90: percentile_ms(samples, 90.0).unwrap_or(0.0),
        p99: percentile_ms(samples, 99.0).unwrap_or(0.0),
        p999: percentile_ms(samples, 99.9).unwrap_or(0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(values: &[u64]) -> Vec<Duration> {
        values.iter().map(|&v| Duration::from_millis(v)).collect()
    }

    #[test]
    fn empty_sample_is_none_not_a_panic() {
        assert_eq!(percentile_ms(&[], 50.0), None);
        assert_eq!(latency_percentiles_ms(&mut Vec::new()), (0.0, 0.0, 0.0));
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let s = ms(&[7]);
        for p in [0.0, 50.0, 99.0, 100.0] {
            assert_eq!(percentile_ms(&s, p), Some(7.0));
        }
    }

    #[test]
    fn nearest_rank_on_a_known_sample() {
        let s = ms(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
        assert_eq!(percentile_ms(&s, 0.0), Some(1.0));
        assert_eq!(percentile_ms(&s, 50.0), Some(6.0), "round(0.5 * 9) = 5");
        assert_eq!(percentile_ms(&s, 100.0), Some(10.0));
    }

    #[test]
    fn out_of_range_percentiles_clamp() {
        let s = ms(&[3, 9]);
        assert_eq!(percentile_ms(&s, -10.0), Some(3.0));
        assert_eq!(percentile_ms(&s, 250.0), Some(9.0));
    }

    #[test]
    fn triple_sorts_its_input() {
        let mut s = ms(&[9, 1, 5]);
        let (p50, p90, p99) = latency_percentiles_ms(&mut s);
        assert_eq!((p50, p90, p99), (5.0, 9.0, 9.0));
    }

    #[test]
    fn p999_guards_empty_and_short_slices() {
        // Empty: zeros, no underflow.
        assert_eq!(latency_tails_ms(&mut Vec::new()), LatencyTails::default());
        // Short slice: p999 collapses to the max — nearest-rank on 3
        // samples cannot resolve a 1-in-1000 tail.
        let mut short = ms(&[9, 1, 5]);
        let tails = latency_tails_ms(&mut short);
        assert_eq!(tails.p999, 9.0);
        assert_eq!(tails.p99, 9.0);
        // Long slice: p999 sits between p99 and the max.
        let mut long: Vec<Duration> = (1..=2000).map(Duration::from_millis).collect();
        let tails = latency_tails_ms(&mut long);
        assert!(tails.p99 < tails.p999, "p999 resolves past p99: {tails:?}");
        assert!(tails.p999 <= 2000.0);
        assert_eq!(tails.p999, 1998.0, "nearest rank: round(0.999 * 1999) = 1997");
    }
}
