//! Dependency-free JSON for device-model serialization.
//!
//! The build environment has no crates.io access, so noise models
//! serialize through this small hand-rolled JSON library instead of
//! serde. [`Json`] is a value tree with a recursive-descent parser and
//! compact/pretty writers. Numbers round-trip exactly: Rust's `{}`
//! formatting of `f64` emits the shortest decimal that parses back to the
//! same bits.

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (held as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys sorted for stable output.
    Obj(BTreeMap<String, Json>),
}

/// Error returned when parsing malformed JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub reason: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.reason)
    }
}

impl Error for JsonError {}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(
            pairs
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Builds an array of numbers.
    pub fn nums(values: impl IntoIterator<Item = f64>) -> Json {
        Json::Arr(values.into_iter().map(Json::Num).collect())
    }

    /// Object field lookup; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as `usize`, if it is a non-negative integer number.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= usize::MAX as f64 => {
                Some(*n as usize)
            }
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a slice, if it is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] on malformed input or trailing garbage.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    /// Compact single-line serialization.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty two-space-indented serialization.
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, padc) = match indent {
            Some(w) => (
                "\n",
                " ".repeat(w * (depth + 1)),
                " ".repeat(w * depth),
            ),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&padc);
                out.push(']');
            }
            Json::Obj(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad);
                    write_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&padc);
                out.push('}');
            }
        }
    }
}

fn write_number(out: &mut String, n: f64) {
    if n.is_finite() {
        if n.fract() == 0.0 && n.abs() < 1e15 {
            // Integral values print without an exponent or trailing `.0`.
            out.push_str(&format!("{}", n as i64));
        } else {
            out.push_str(&format!("{n}"));
        }
    } else {
        // JSON has no Inf/NaN; null is the conventional fallback.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, reason: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            reason: reason.into(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(self.err(format!("unexpected character '{}'", b as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    /// Reads 4 hex digits at byte offset `at` as a code unit.
    fn hex4(&self, at: usize) -> Result<u32, JsonError> {
        let hex = self
            .bytes
            .get(at..at + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let hex = std::str::from_utf8(hex).map_err(|_| self.err("non-ASCII \\u escape"))?;
        u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let code = self.hex4(self.pos + 1)?;
                            if (0xDC00..0xE000).contains(&code) {
                                // A low surrogate with no preceding high
                                // surrogate (covers inverted pairs too).
                                return Err(self.err(format!(
                                    "lone low surrogate \\u{code:04x} in string"
                                )));
                            }
                            if (0xD800..0xDC00).contains(&code) {
                                // UTF-16 surrogate pair: the high half must
                                // be followed immediately by an escaped low
                                // half, per RFC 8259 §7.
                                if self.bytes.get(self.pos + 5) != Some(&b'\\')
                                    || self.bytes.get(self.pos + 6) != Some(&b'u')
                                {
                                    return Err(self.err(format!(
                                        "lone high surrogate \\u{code:04x} in string"
                                    )));
                                }
                                let low = self.hex4(self.pos + 7)?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.err(format!(
                                        "high surrogate \\u{code:04x} followed by \
                                         non-low-surrogate \\u{low:04x}"
                                    )));
                                }
                                let scalar =
                                    0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                s.push(
                                    char::from_u32(scalar)
                                        .ok_or_else(|| self.err("invalid surrogate pair"))?,
                                );
                                self.pos += 10;
                            } else {
                                // Non-surrogate BMP code points are always
                                // valid chars.
                                s.push(
                                    char::from_u32(code)
                                        .ok_or_else(|| self.err("invalid \\u code point"))?,
                                );
                                self.pos += 4;
                            }
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = &self.bytes[start..];
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = text.chars().next().ok_or_else(|| self.err("empty"))?;
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number bytes"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("invalid number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse(" -3.5e2 ").unwrap(), Json::Num(-350.0));
        assert_eq!(
            Json::parse("\"a\\nb\"").unwrap(),
            Json::Str("a\nb".into())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#"{"a": [1, 2.5, {"b": "c"}], "d": false}"#).unwrap();
        assert_eq!(v.get("d"), Some(&Json::Bool(false)));
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[1], Json::Num(2.5));
        assert_eq!(arr[2].get("b").unwrap().as_str(), Some("c"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{not json", "[1, 2", "{\"a\": }", "1 2", "\"open", "{\"a\" 1}"] {
            assert!(Json::parse(bad).is_err(), "{bad} should fail");
        }
    }

    #[test]
    fn decodes_utf16_surrogate_pairs() {
        // \ud83d\ude00 is U+1F600 GRINNING FACE, the issue's example.
        assert_eq!(
            Json::parse(r#""\ud83d\ude00""#).unwrap(),
            Json::Str("😀".into())
        );
        assert_eq!(
            Json::parse(r#""\uD834\uDD1E""#).unwrap(),
            Json::Str("\u{1D11E}".into()),
            "uppercase hex, U+1D11E musical G clef"
        );
        // Surrogate pair embedded between BMP escapes and raw text.
        assert_eq!(
            Json::parse(r#""a\u00e9\ud83e\udd16b""#).unwrap(),
            Json::Str("a\u{e9}\u{1F916}b".into())
        );
        // Raw (unescaped) astral-plane UTF-8 still parses too.
        assert_eq!(Json::parse("\"😀\"").unwrap(), Json::Str("😀".into()));
    }

    #[test]
    fn rejects_lone_and_inverted_surrogates() {
        for bad in [
            r#""\ud800""#,          // lone high, end of string
            r#""\ud83dx""#,         // lone high, raw text follows
            r#""\ud83d\n""#,        // lone high, non-\u escape follows
            r#""\ude00""#,          // lone low
            r#""\ude00\ud83d""#,    // inverted pair
            r#""\ud83d\ud83d""#,    // high followed by high
            r#""\ud83dA""#,    // high followed by non-surrogate
        ] {
            let err = Json::parse(bad).expect_err(bad);
            assert!(err.reason.contains("surrogate"), "{bad}: {}", err.reason);
        }
    }

    #[test]
    fn floats_round_trip_exactly() {
        for x in [0.1, 1.0 / 3.0, 6.02e23, -1e-300, 0.00096, f64::MIN_POSITIVE] {
            let v = Json::Num(x);
            let back = Json::parse(&v.to_json()).unwrap();
            assert_eq!(back.as_f64().unwrap().to_bits(), x.to_bits(), "{x}");
        }
    }

    #[test]
    fn value_round_trip_compact_and_pretty() {
        let v = Json::obj([
            ("name", Json::Str("ibmq-test".into())),
            ("n", Json::Num(5.0)),
            ("rates", Json::nums([0.1, 0.2])),
            ("nested", Json::obj([("flag", Json::Bool(true))])),
        ]);
        assert_eq!(Json::parse(&v.to_json()).unwrap(), v);
        assert_eq!(Json::parse(&v.to_json_pretty()).unwrap(), v);
        assert!(v.to_json_pretty().contains("\n  "));
    }

    #[test]
    fn accessors_reject_wrong_types() {
        let v = Json::parse(r#"{"n": 2.5, "i": 3}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_usize(), None);
        assert_eq!(v.get("i").unwrap().as_usize(), Some(3));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Null.as_f64(), None);
    }
}
