//! ISSUE 5 satellite: encode→parse round-trip property over arbitrary
//! `String`s, which pins `write_string`/escape symmetry — including the
//! UTF-16 surrogate-pair fix the wire format depends on.
//!
//! The generator is deliberately plane-hostile: code points are drawn
//! from ASCII, the control range (escaped as `\u00XX`), the BMP, and the
//! astral planes (where the JSON-escaped form is a surrogate pair).

use proptest::prelude::*;
use qnat_json::Json;

/// Maps an arbitrary `u32` into a valid Unicode scalar value, folding the
/// surrogate range (which no Rust `char` can hold) into the astral plane
/// so astral code points stay well represented.
fn scalar(raw: u32) -> char {
    let folded = raw % 0x11_0000;
    match char::from_u32(folded) {
        Some(c) => c,
        // 0xD800..0xE000: remap into Supplementary Multilingual Plane.
        None => char::from_u32(0x1_0000 + (folded - 0xD800))
            .expect("folded surrogate lands on a valid astral scalar"),
    }
}

/// A string drawn from all Unicode planes: each element picks a range —
/// ASCII/control, full BMP-or-above via fold, or astral-only.
fn arbitrary_string(choices: &[(u8, u32)]) -> String {
    choices
        .iter()
        .map(|&(plane, raw)| match plane % 3 {
            0 => scalar(raw % 0x80),            // ASCII incl. controls, quotes, backslash
            1 => scalar(raw),                   // any scalar (BMP + astral, surrogates folded)
            _ => scalar(0x1_0000 + raw % 0xF_0000), // astral only: always a surrogate pair in UTF-16
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `Json::Str(s)` survives compact and pretty serialization for any
    /// string, byte-for-byte.
    #[test]
    fn string_value_round_trips(
        choices in prop::collection::vec((0u8..=255, 0u32..=u32::MAX), 0..48)
    ) {
        let s = arbitrary_string(&choices);
        let v = Json::Str(s.clone());
        let compact = Json::parse(&v.to_json()).expect("compact re-parse");
        prop_assert_eq!(compact.as_str(), Some(s.as_str()));
        let pretty = Json::parse(&v.to_json_pretty()).expect("pretty re-parse");
        prop_assert_eq!(pretty.as_str(), Some(s.as_str()));
    }

    /// Strings round-trip as object *keys* too — keys go through the same
    /// `write_string`/`string()` pair as values.
    #[test]
    fn object_key_round_trips(
        choices in prop::collection::vec((0u8..=255, 0u32..=u32::MAX), 1..24)
    ) {
        let key = arbitrary_string(&choices);
        let mut map = std::collections::BTreeMap::new();
        map.insert(key.clone(), Json::Num(1.0));
        let v = Json::Obj(map);
        let back = Json::parse(&v.to_json()).expect("re-parse");
        prop_assert_eq!(back.get(&key).and_then(Json::as_f64), Some(1.0));
    }

    /// Every UTF-16 surrogate pair written as explicit `\uXXXX\uXXXX`
    /// escapes decodes to the scalar it encodes — the interop path an
    /// external JSON writer (which may always escape non-ASCII) exercises.
    #[test]
    fn escaped_surrogate_pair_decodes(astral in 0x1_0000u32..0x11_0000) {
        // The astral range holds no surrogates, so this is always a char.
        let expected = char::from_u32(astral).expect("astral scalar");
        let v = astral - 0x1_0000;
        let (high, low) = (0xD800 + (v >> 10), 0xDC00 + (v & 0x3FF));
        let doc = format!("\"\\u{high:04x}\\u{low:04x}\"");
        let parsed = Json::parse(&doc).expect("surrogate pair parses");
        prop_assert_eq!(parsed, Json::Str(expected.to_string()));
    }

    /// A lone surrogate escape is a parse error (never a panic), wherever
    /// it sits in the string.
    #[test]
    fn lone_surrogate_is_typed_error(
        unit in 0xD800u32..0xE000,
        prefix in 0u32..3,
    ) {
        let pre = ["", "a", "\\n"][prefix as usize];
        let doc = format!("\"{pre}\\u{unit:04x}\"");
        let err = Json::parse(&doc).expect_err("lone surrogate must not parse");
        prop_assert!(err.reason.contains("surrogate"), "{}", err.reason);
    }
}
