//! Peephole optimization passes over basis-gate circuits.
//!
//! Mirrors the cheap cleanups Qiskit applies at optimization levels 1–2:
//! merging runs of virtual RZ rotations, dropping zero-angle rotations and
//! explicit identities, and cancelling adjacent self-inverse pairs (X·X,
//! CX·CX on the same qubits). Passes run to a fixpoint.

use crate::euler::normalize_angle;
use qnat_sim::circuit::Circuit;
use qnat_sim::gate::{Gate, GateKind};

/// Merges adjacent RZ gates on the same qubit (no intervening gate touching
/// that qubit) and drops RZ(0) and identity gates. Returns `true` if
/// anything changed.
pub fn merge_rz(circuit: &mut Circuit) -> bool {
    let gates = circuit.gates().to_vec();
    let mut out: Vec<Gate> = Vec::with_capacity(gates.len());
    let mut changed = false;
    for g in gates {
        if g.kind == GateKind::Id {
            changed = true;
            continue;
        }
        if g.kind == GateKind::Rz {
            // Look back for an RZ on the same qubit with nothing touching
            // that qubit in between (gates after it in `out` that touch the
            // qubit would block the merge — since we scan forward, only the
            // *last* gate touching this qubit matters).
            if let Some(prev) = out
                .iter_mut()
                .rev()
                .find(|p| (0..p.arity()).any(|k| p.qubits[k] == g.qubits[0]))
            {
                if prev.kind == GateKind::Rz && prev.qubits[0] == g.qubits[0] {
                    prev.params[0] = normalize_angle(prev.params[0] + g.params[0]);
                    changed = true;
                    continue;
                }
            }
            if normalize_angle(g.params[0]).abs() < 1e-12 {
                changed = true;
                continue;
            }
        }
        out.push(g);
    }
    // Drop RZ gates that merged to zero.
    let before = out.len();
    out.retain(|g| g.kind != GateKind::Rz || normalize_angle(g.params[0]).abs() > 1e-12);
    changed |= out.len() != before;
    let mut result = Circuit::new(circuit.n_qubits());
    result.extend(out);
    *circuit = result;
    changed
}

/// Cancels adjacent self-inverse pairs: X·X on a qubit and CX·CX on the same
/// (control, target) pair with no intervening gate on either qubit. Returns
/// `true` if anything changed.
pub fn cancel_pairs(circuit: &mut Circuit) -> bool {
    let gates = circuit.gates().to_vec();
    let mut out: Vec<Gate> = Vec::with_capacity(gates.len());
    let mut changed = false;
    for g in gates {
        let cancels = match g.kind {
            GateKind::X | GateKind::Cx => {
                // Find the last gate in `out` touching any of g's qubits.
                let touches: Vec<usize> = (0..g.arity()).map(|k| g.qubits[k]).collect();
                let last = out.iter().rposition(|p| {
                    (0..p.arity()).any(|k| touches.contains(&p.qubits[k]))
                });
                match last {
                    Some(i) => {
                        let p = out[i];
                        let same = p.kind == g.kind
                            && p.qubits[..p.arity()] == g.qubits[..g.arity()];
                        // For CX both qubits' last-touching gate must be p.
                        let clean = touches.iter().all(|&q| {
                            out.iter()
                                .rposition(|x| (0..x.arity()).any(|k| x.qubits[k] == q))
                                == Some(i)
                        });
                        if same && clean {
                            out.remove(i);
                            changed = true;
                            true
                        } else {
                            false
                        }
                    }
                    None => false,
                }
            }
            _ => false,
        };
        if !cancels {
            out.push(g);
        }
    }
    let mut result = Circuit::new(circuit.n_qubits());
    result.extend(out);
    *circuit = result;
    changed
}

/// Runs all peephole passes to a fixpoint.
pub fn optimize(circuit: &mut Circuit) {
    loop {
        let mut changed = false;
        changed |= merge_rz(circuit);
        changed |= cancel_pairs(circuit);
        if !changed {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unitary::equiv_up_to_phase;
    use std::f64::consts::FRAC_PI_2;

    #[test]
    fn merges_adjacent_rz() {
        let mut c = Circuit::new(1);
        c.push(Gate::rz(0, 0.3));
        c.push(Gate::rz(0, 0.4));
        c.push(Gate::sx(0));
        c.push(Gate::rz(0, -0.2));
        let reference = c.clone();
        optimize(&mut c);
        assert_eq!(c.len(), 3);
        assert!((c.gates()[0].params[0] - 0.7).abs() < 1e-12);
        assert!(equiv_up_to_phase(&reference, &c, 1e-10));
    }

    #[test]
    fn rz_merge_blocked_by_intervening_gate() {
        let mut c = Circuit::new(2);
        c.push(Gate::rz(0, 0.3));
        c.push(Gate::cx(0, 1));
        c.push(Gate::rz(0, 0.4));
        optimize(&mut c);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn cancels_x_pairs_and_cx_pairs() {
        let mut c = Circuit::new(2);
        c.push(Gate::x(0));
        c.push(Gate::x(0));
        c.push(Gate::cx(0, 1));
        c.push(Gate::cx(0, 1));
        c.push(Gate::sx(1));
        let reference = c.clone();
        optimize(&mut c);
        assert_eq!(c.len(), 1);
        assert!(equiv_up_to_phase(&reference, &c, 1e-10));
    }

    #[test]
    fn cx_with_different_orientation_not_cancelled() {
        let mut c = Circuit::new(2);
        c.push(Gate::cx(0, 1));
        c.push(Gate::cx(1, 0));
        optimize(&mut c);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn cx_cancel_blocked_by_gate_on_target() {
        let mut c = Circuit::new(2);
        c.push(Gate::cx(0, 1));
        c.push(Gate::sx(1));
        c.push(Gate::cx(0, 1));
        optimize(&mut c);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn rz_full_turn_vanishes() {
        let mut c = Circuit::new(1);
        c.push(Gate::rz(0, FRAC_PI_2));
        c.push(Gate::rz(0, -FRAC_PI_2));
        optimize(&mut c);
        assert!(c.is_empty());
    }

    #[test]
    fn cascaded_cancellation() {
        // X X X X → empty needs two rounds.
        let mut c = Circuit::new(1);
        for _ in 0..4 {
            c.push(Gate::x(0));
        }
        optimize(&mut c);
        assert!(c.is_empty());
    }
}
