//! Gate fusion: collapse a transpiled circuit into a [`FusedCircuit`] of
//! dense unitaries for fuse-once-run-many execution.
//!
//! Two rules, both exact (no approximation beyond f64 reassociation):
//!
//! 1. **Single-qubit runs.** Adjacent single-qubit gates on the same qubit
//!    accumulate into one 2×2 product. Accumulation is *deferred*: a
//!    pending 2×2 rides along until the qubit meets a two-qubit gate (it
//!    is then folded into that gate's 4×4) or the circuit ends (it is
//!    flushed as a [`FusedOp::One`]). Deferral past gates on disjoint
//!    qubits is sound because operators with disjoint supports commute.
//! 2. **Two-qubit sandwiches.** A two-qubit gate absorbs every directly
//!    following gate that acts entirely within its qubit pair — trailing
//!    single-qubit gates lifted by `I ⊗ ·` / `· ⊗ I`, same-pair two-qubit
//!    gates directly, reversed-pair gates through a basis permutation —
//!    so CX-sandwiched runs like `CX·(u₁⊗u₂)·CX` become one 4×4.
//!
//! The fused circuit reproduces the unfused one within 1e-12 (pinned by
//! the proptests in `tests/fusion_props.rs`). Fusion is only valid where
//! execution is pure-unitary: the hardware emulator interleaves noise
//! channels after every *physical* gate, so fusing there would change the
//! noise semantics — callers fuse the noise-free evaluation path only.

use qnat_sim::circuit::Circuit;
use qnat_sim::fused::{FusedCircuit, FusedOp};
use qnat_sim::gate::GateMatrix;
use qnat_sim::math::{kron2, mat2_mul, mat4_mul, C64, Mat2, Mat4};

/// 2×2 identity, the seed for pending single-qubit accumulators.
const ID2: Mat2 = [[C64::ONE, C64::ZERO], [C64::ZERO, C64::ONE]];

/// Reinterprets a 4×4 gate matrix given in the basis
/// `index = 2·bit(qa) + bit(qb)` as one in the basis
/// `index = 2·bit(qb) + bit(qa)` — i.e. swaps which qubit each matrix
/// axis addresses. Basis states 1 (`01`) and 2 (`10`) trade places.
pub fn swap_qubit_order(m: &Mat4) -> Mat4 {
    const P: [usize; 4] = [0, 2, 1, 3];
    let mut out = [[C64::ZERO; 4]; 4];
    for (i, row) in out.iter_mut().enumerate() {
        for (j, cell) in row.iter_mut().enumerate() {
            *cell = m[P[i]][P[j]];
        }
    }
    out
}

/// How an absorbed gate folds into a two-qubit accumulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Absorb {
    /// Single-qubit gate on `qa`, lifted as `m ⊗ I`.
    LiftA,
    /// Single-qubit gate on `qb`, lifted as `I ⊗ m`.
    LiftB,
    /// Two-qubit gate already in `(qa, qb)` order.
    Direct,
    /// Two-qubit gate in `(qb, qa)` order, folded through
    /// [`swap_qubit_order`].
    Swapped,
}

/// One fused op's recipe: which template gate indices compose it and how.
#[derive(Debug, Clone, PartialEq, Eq)]
enum OpPlan {
    /// A flushed single-qubit run: `gates` in application order (later
    /// entries multiply on the left).
    One { q: usize, gates: Vec<usize> },
    /// A two-qubit sandwich: both qubits' pending single runs, the base
    /// two-qubit gate, and every absorbed follower with its fold mode.
    Two {
        qa: usize,
        qb: usize,
        pend_a: Vec<usize>,
        pend_b: Vec<usize>,
        base: usize,
        absorbed: Vec<(usize, Absorb)>,
    },
}

/// The structure of a fusion, computed once from a circuit *template*.
///
/// Which gates fuse into which dense op depends only on gate arities and
/// qubit supports — never on angle values — so the plan for a symbolic
/// template (e.g. [`SymbolicLowered::circuit`]) applies verbatim to every
/// parameter binding of it. [`FusionPlan::fuse_bound`] then fuses a bound
/// circuit with pure matrix arithmetic: no per-call structural scan, no
/// per-call allocation beyond the output. [`fuse`] itself is implemented
/// as `for_template` + `fuse_bound`, so the cached-plan path and the
/// one-shot path cannot diverge.
///
/// [`SymbolicLowered::circuit`]: crate::symbolic::SymbolicLowered
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FusionPlan {
    n_qubits: usize,
    n_gates: usize,
    ops: Vec<OpPlan>,
}

impl FusionPlan {
    /// Computes the fusion structure of `template`: the same two-rule
    /// scan [`fuse`] performs, recording gate indices instead of
    /// multiplying matrices.
    pub fn for_template(template: &Circuit) -> FusionPlan {
        let n = template.n_qubits();
        let gates = template.gates();
        let mut ops = Vec::new();
        let mut pending: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut i = 0;
        while i < gates.len() {
            let g = &gates[i];
            if g.arity() == 1 {
                pending[g.qubits[0]].push(i);
                i += 1;
                continue;
            }
            let (qa, qb) = (g.qubits[0], g.qubits[1]);
            let pend_a = std::mem::take(&mut pending[qa]);
            let pend_b = std::mem::take(&mut pending[qb]);
            let base = i;
            i += 1;
            // Absorb every following gate fully inside {qa, qb}.
            let mut absorbed = Vec::new();
            while i < gates.len() {
                let h = &gates[i];
                let inside = if h.arity() == 1 {
                    h.qubits[0] == qa || h.qubits[0] == qb
                } else {
                    (h.qubits[0] == qa || h.qubits[0] == qb)
                        && (h.qubits[1] == qa || h.qubits[1] == qb)
                };
                if !inside {
                    break;
                }
                let mode = if h.arity() == 1 {
                    if h.qubits[0] == qa {
                        Absorb::LiftA
                    } else {
                        Absorb::LiftB
                    }
                } else if h.qubits[0] == qa {
                    Absorb::Direct
                } else {
                    Absorb::Swapped
                };
                absorbed.push((i, mode));
                i += 1;
            }
            ops.push(OpPlan::Two {
                qa,
                qb,
                pend_a,
                pend_b,
                base,
                absorbed,
            });
        }
        // Flush pending singles never consumed by a two-qubit gate.
        // Deferral is exact: each rides only past gates on other qubits,
        // which commute with it.
        for (q, run) in pending.into_iter().enumerate() {
            if !run.is_empty() {
                ops.push(OpPlan::One { q, gates: run });
            }
        }
        FusionPlan {
            n_qubits: n,
            n_gates: gates.len(),
            ops,
        }
    }

    /// Qubit count of the template this plan was built from.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Gate count of the template this plan was built from — a bound
    /// circuit must match it exactly.
    pub fn n_gates(&self) -> usize {
        self.n_gates
    }

    /// Fused ops this plan produces.
    pub fn n_ops(&self) -> usize {
        self.ops.len()
    }

    /// Fuses `bound` — a circuit with the *same gate structure* as the
    /// plan's template (same gate sequence and qubit supports; parameter
    /// values free) — into dense per-run unitaries, bitwise identical to
    /// [`fuse`] on the same circuit.
    ///
    /// # Panics
    ///
    /// Panics if `bound`'s qubit or gate count differs from the
    /// template's, or if a gate's arity disagrees with the recorded
    /// structure (the plan was built from a different template).
    pub fn fuse_bound(&self, bound: &Circuit) -> FusedCircuit {
        assert_eq!(bound.n_qubits(), self.n_qubits, "fusion plan qubit count");
        let gates = bound.gates();
        assert_eq!(gates.len(), self.n_gates, "fusion plan gate count");
        let mat2_at = |i: usize| -> Mat2 {
            match gates[i].matrix() {
                GateMatrix::One(m) => m,
                GateMatrix::Two(_) => panic!("fusion plan expected a single-qubit gate at {i}"),
            }
        };
        let mat4_at = |i: usize| -> Mat4 {
            match gates[i].matrix() {
                GateMatrix::Two(m) => m,
                GateMatrix::One(_) => panic!("fusion plan expected a two-qubit gate at {i}"),
            }
        };
        // Later gate multiplies on the left; an empty run is the
        // identity. Seeding from the first gate (not ID2) keeps the
        // accumulation bitwise identical to direct left-folding.
        let fold_run = |run: &[usize]| -> Mat2 {
            let mut iter = run.iter();
            let Some(&first) = iter.next() else { return ID2 };
            let mut acc = mat2_at(first);
            for &i in iter {
                acc = mat2_mul(&mat2_at(i), &acc);
            }
            acc
        };
        let mut out = FusedCircuit::new(self.n_qubits);
        for op in &self.ops {
            match op {
                OpPlan::One { q, gates: run } => {
                    out.push(FusedOp::One {
                        q: *q,
                        m: fold_run(run),
                    });
                }
                OpPlan::Two {
                    qa,
                    qb,
                    pend_a,
                    pend_b,
                    base,
                    absorbed,
                } => {
                    // Fold both qubits' pending singles into the 4×4
                    // first (kron2 puts its first factor on the
                    // 2·bit axis = qa).
                    let pa = fold_run(pend_a);
                    let pb = fold_run(pend_b);
                    let mut acc = mat4_mul(&mat4_at(*base), &kron2(&pa, &pb));
                    for &(i, mode) in absorbed {
                        acc = match mode {
                            Absorb::LiftA => mat4_mul(&kron2(&mat2_at(i), &ID2), &acc),
                            Absorb::LiftB => mat4_mul(&kron2(&ID2, &mat2_at(i)), &acc),
                            Absorb::Direct => mat4_mul(&mat4_at(i), &acc),
                            Absorb::Swapped => mat4_mul(&swap_qubit_order(&mat4_at(i)), &acc),
                        };
                    }
                    out.push(FusedOp::Two {
                        qa: *qa,
                        qb: *qb,
                        m: acc,
                    });
                }
            }
        }
        out
    }
}

/// Fuses `circuit` into dense per-run unitaries.
///
/// The result is semantically identical to the input (within f64
/// reassociation, ≤ ~1e-15 per op) and usually far shorter: a transpiled
/// §4.2 QNN block's Euler triples and CX sandwiches collapse to roughly
/// one op per entangling pair. Implemented as
/// [`FusionPlan::for_template`] + [`FusionPlan::fuse_bound`]; callers
/// fusing many bindings of one template should build the plan once and
/// call `fuse_bound` per binding.
pub fn fuse(circuit: &Circuit) -> FusedCircuit {
    FusionPlan::for_template(circuit).fuse_bound(circuit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qnat_sim::fused::simulate_fused;
    use qnat_sim::gate::Gate;
    use qnat_sim::math::mat4_is_unitary;
    use qnat_sim::statevector::simulate;

    fn assert_equivalent(c: &Circuit) {
        let fused = fuse(c);
        let psi = simulate(c);
        let phi = simulate_fused(&fused);
        for (a, b) in psi.amplitudes().iter().zip(phi.amplitudes()) {
            assert!(a.approx_eq(*b, 1e-12), "{a} vs {b} in\n{c}");
        }
    }

    #[test]
    fn single_qubit_run_collapses_to_one_op() {
        let mut c = Circuit::new(1);
        c.push(Gate::h(0));
        c.push(Gate::rz(0, 0.4));
        c.push(Gate::sx(0));
        c.push(Gate::rz(0, -0.9));
        let fused = fuse(&c);
        assert_eq!(fused.len(), 1);
        assert_equivalent(&c);
    }

    #[test]
    fn cx_sandwich_collapses_to_one_mat4() {
        // CX · (u₁⊗u₂) · CX — the canonical sandwich.
        let mut c = Circuit::new(2);
        c.push(Gate::cx(0, 1));
        c.push(Gate::u3(0, 0.3, 0.1, -0.2));
        c.push(Gate::u3(1, -0.7, 0.5, 0.9));
        c.push(Gate::cx(0, 1));
        let fused = fuse(&c);
        assert_eq!(fused.len(), 1);
        match fused.ops()[0] {
            FusedOp::Two { qa, qb, ref m } => {
                assert_eq!((qa, qb), (0, 1));
                assert!(mat4_is_unitary(m, 1e-10));
            }
            ref other => panic!("expected one Two op, got {other:?}"),
        }
        assert_equivalent(&c);
    }

    #[test]
    fn reversed_pair_gates_absorb_through_permutation() {
        let mut c = Circuit::new(2);
        c.push(Gate::cx(0, 1));
        c.push(Gate::cx(1, 0));
        c.push(Gate::cry(1, 0, 0.8));
        let fused = fuse(&c);
        assert_eq!(fused.len(), 1);
        assert_equivalent(&c);
    }

    #[test]
    fn pending_singles_defer_past_disjoint_gates() {
        // H(2) must survive a CX on (0,1) and still apply.
        let mut c = Circuit::new(3);
        c.push(Gate::h(2));
        c.push(Gate::cx(0, 1));
        c.push(Gate::ry(2, 0.6));
        let fused = fuse(&c);
        // One Two op for the CX, one flushed One op for the q2 run.
        assert_eq!(fused.len(), 2);
        assert_equivalent(&c);
    }

    #[test]
    fn pending_singles_fold_into_following_two_qubit_gate() {
        let mut c = Circuit::new(2);
        c.push(Gate::h(0));
        c.push(Gate::rz(1, 0.3));
        c.push(Gate::cx(0, 1));
        let fused = fuse(&c);
        assert_eq!(fused.len(), 1);
        assert_equivalent(&c);
    }

    #[test]
    fn interleaved_pairs_break_absorption_correctly() {
        let mut c = Circuit::new(3);
        c.push(Gate::cx(0, 1));
        c.push(Gate::h(1));
        c.push(Gate::cx(1, 2));
        c.push(Gate::rzz(0, 1, 0.4));
        c.push(Gate::swap(0, 2));
        assert_equivalent(&c);
    }

    #[test]
    fn empty_and_identity_circuits() {
        let c = Circuit::new(3);
        let fused = fuse(&c);
        assert!(fused.is_empty());
        assert_equivalent(&c);
    }

    #[test]
    fn fused_ops_stay_unitary() {
        let mut c = Circuit::new(4);
        for q in 0..4 {
            c.push(Gate::u3(q, 0.2 + q as f64, -0.3, 0.7));
        }
        for q in 0..3 {
            c.push(Gate::cu3(q, q + 1, 0.5, 0.1, -0.4));
        }
        for op in fuse(&c).ops() {
            if let FusedOp::Two { m, .. } = op {
                assert!(mat4_is_unitary(m, 1e-10));
            }
        }
        assert_equivalent(&c);
    }

    #[test]
    fn swap_qubit_order_is_an_involution() {
        let m = Gate::cu3(0, 1, 0.9, -0.2, 0.4).matrix2();
        assert_eq!(swap_qubit_order(&swap_qubit_order(&m)), m);
    }
}
