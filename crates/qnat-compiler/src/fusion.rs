//! Gate fusion: collapse a transpiled circuit into a [`FusedCircuit`] of
//! dense unitaries for fuse-once-run-many execution.
//!
//! Two rules, both exact (no approximation beyond f64 reassociation):
//!
//! 1. **Single-qubit runs.** Adjacent single-qubit gates on the same qubit
//!    accumulate into one 2×2 product. Accumulation is *deferred*: a
//!    pending 2×2 rides along until the qubit meets a two-qubit gate (it
//!    is then folded into that gate's 4×4) or the circuit ends (it is
//!    flushed as a [`FusedOp::One`]). Deferral past gates on disjoint
//!    qubits is sound because operators with disjoint supports commute.
//! 2. **Two-qubit sandwiches.** A two-qubit gate absorbs every directly
//!    following gate that acts entirely within its qubit pair — trailing
//!    single-qubit gates lifted by `I ⊗ ·` / `· ⊗ I`, same-pair two-qubit
//!    gates directly, reversed-pair gates through a basis permutation —
//!    so CX-sandwiched runs like `CX·(u₁⊗u₂)·CX` become one 4×4.
//!
//! The fused circuit reproduces the unfused one within 1e-12 (pinned by
//! the proptests in `tests/fusion_props.rs`). Fusion is only valid where
//! execution is pure-unitary: the hardware emulator interleaves noise
//! channels after every *physical* gate, so fusing there would change the
//! noise semantics — callers fuse the noise-free evaluation path only.

use qnat_sim::circuit::Circuit;
use qnat_sim::fused::{FusedCircuit, FusedOp};
use qnat_sim::gate::GateMatrix;
use qnat_sim::math::{kron2, mat2_mul, mat4_mul, C64, Mat2, Mat4};

/// 2×2 identity, the seed for pending single-qubit accumulators.
const ID2: Mat2 = [[C64::ONE, C64::ZERO], [C64::ZERO, C64::ONE]];

/// Reinterprets a 4×4 gate matrix given in the basis
/// `index = 2·bit(qa) + bit(qb)` as one in the basis
/// `index = 2·bit(qb) + bit(qa)` — i.e. swaps which qubit each matrix
/// axis addresses. Basis states 1 (`01`) and 2 (`10`) trade places.
pub fn swap_qubit_order(m: &Mat4) -> Mat4 {
    const P: [usize; 4] = [0, 2, 1, 3];
    let mut out = [[C64::ZERO; 4]; 4];
    for (i, row) in out.iter_mut().enumerate() {
        for (j, cell) in row.iter_mut().enumerate() {
            *cell = m[P[i]][P[j]];
        }
    }
    out
}

/// Fuses `circuit` into dense per-run unitaries.
///
/// The result is semantically identical to the input (within f64
/// reassociation, ≤ ~1e-15 per op) and usually far shorter: a transpiled
/// §4.2 QNN block's Euler triples and CX sandwiches collapse to roughly
/// one op per entangling pair.
pub fn fuse(circuit: &Circuit) -> FusedCircuit {
    let n = circuit.n_qubits();
    let mut out = FusedCircuit::new(n);
    let mut pending: Vec<Option<Mat2>> = vec![None; n];
    let gates = circuit.gates();
    let mut i = 0;
    while i < gates.len() {
        let g = &gates[i];
        match g.matrix() {
            GateMatrix::One(m) => {
                // Later gate multiplies on the left.
                let q = g.qubits[0];
                pending[q] = Some(match pending[q] {
                    Some(p) => mat2_mul(&m, &p),
                    None => m,
                });
                i += 1;
            }
            GateMatrix::Two(m) => {
                let (qa, qb) = (g.qubits[0], g.qubits[1]);
                // Fold both qubits' pending singles into the 4×4 first
                // (kron2 puts its first factor on the 2·bit axis = qa).
                let pa = pending[qa].take().unwrap_or(ID2);
                let pb = pending[qb].take().unwrap_or(ID2);
                let mut acc = mat4_mul(&m, &kron2(&pa, &pb));
                i += 1;
                // Absorb every following gate fully inside {qa, qb}.
                while i < gates.len() {
                    let h = &gates[i];
                    let inside = if h.arity() == 1 {
                        h.qubits[0] == qa || h.qubits[0] == qb
                    } else {
                        (h.qubits[0] == qa || h.qubits[0] == qb)
                            && (h.qubits[1] == qa || h.qubits[1] == qb)
                    };
                    if !inside {
                        break;
                    }
                    match h.matrix() {
                        GateMatrix::One(hm) => {
                            let lifted = if h.qubits[0] == qa {
                                kron2(&hm, &ID2)
                            } else {
                                kron2(&ID2, &hm)
                            };
                            acc = mat4_mul(&lifted, &acc);
                        }
                        GateMatrix::Two(hm) => {
                            let aligned = if h.qubits[0] == qa {
                                hm
                            } else {
                                swap_qubit_order(&hm)
                            };
                            acc = mat4_mul(&aligned, &acc);
                        }
                    }
                    i += 1;
                }
                out.push(FusedOp::Two { qa, qb, m: acc });
            }
        }
    }
    // Flush pending singles never consumed by a two-qubit gate. Deferral
    // is exact: each rides only past gates on other qubits, which commute
    // with it.
    for (q, p) in pending.iter().enumerate() {
        if let Some(m) = p {
            out.push(FusedOp::One { q, m: *m });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use qnat_sim::fused::simulate_fused;
    use qnat_sim::gate::Gate;
    use qnat_sim::math::mat4_is_unitary;
    use qnat_sim::statevector::simulate;

    fn assert_equivalent(c: &Circuit) {
        let fused = fuse(c);
        let psi = simulate(c);
        let phi = simulate_fused(&fused);
        for (a, b) in psi.amplitudes().iter().zip(phi.amplitudes()) {
            assert!(a.approx_eq(*b, 1e-12), "{a} vs {b} in\n{c}");
        }
    }

    #[test]
    fn single_qubit_run_collapses_to_one_op() {
        let mut c = Circuit::new(1);
        c.push(Gate::h(0));
        c.push(Gate::rz(0, 0.4));
        c.push(Gate::sx(0));
        c.push(Gate::rz(0, -0.9));
        let fused = fuse(&c);
        assert_eq!(fused.len(), 1);
        assert_equivalent(&c);
    }

    #[test]
    fn cx_sandwich_collapses_to_one_mat4() {
        // CX · (u₁⊗u₂) · CX — the canonical sandwich.
        let mut c = Circuit::new(2);
        c.push(Gate::cx(0, 1));
        c.push(Gate::u3(0, 0.3, 0.1, -0.2));
        c.push(Gate::u3(1, -0.7, 0.5, 0.9));
        c.push(Gate::cx(0, 1));
        let fused = fuse(&c);
        assert_eq!(fused.len(), 1);
        match fused.ops()[0] {
            FusedOp::Two { qa, qb, ref m } => {
                assert_eq!((qa, qb), (0, 1));
                assert!(mat4_is_unitary(m, 1e-10));
            }
            ref other => panic!("expected one Two op, got {other:?}"),
        }
        assert_equivalent(&c);
    }

    #[test]
    fn reversed_pair_gates_absorb_through_permutation() {
        let mut c = Circuit::new(2);
        c.push(Gate::cx(0, 1));
        c.push(Gate::cx(1, 0));
        c.push(Gate::cry(1, 0, 0.8));
        let fused = fuse(&c);
        assert_eq!(fused.len(), 1);
        assert_equivalent(&c);
    }

    #[test]
    fn pending_singles_defer_past_disjoint_gates() {
        // H(2) must survive a CX on (0,1) and still apply.
        let mut c = Circuit::new(3);
        c.push(Gate::h(2));
        c.push(Gate::cx(0, 1));
        c.push(Gate::ry(2, 0.6));
        let fused = fuse(&c);
        // One Two op for the CX, one flushed One op for the q2 run.
        assert_eq!(fused.len(), 2);
        assert_equivalent(&c);
    }

    #[test]
    fn pending_singles_fold_into_following_two_qubit_gate() {
        let mut c = Circuit::new(2);
        c.push(Gate::h(0));
        c.push(Gate::rz(1, 0.3));
        c.push(Gate::cx(0, 1));
        let fused = fuse(&c);
        assert_eq!(fused.len(), 1);
        assert_equivalent(&c);
    }

    #[test]
    fn interleaved_pairs_break_absorption_correctly() {
        let mut c = Circuit::new(3);
        c.push(Gate::cx(0, 1));
        c.push(Gate::h(1));
        c.push(Gate::cx(1, 2));
        c.push(Gate::rzz(0, 1, 0.4));
        c.push(Gate::swap(0, 2));
        assert_equivalent(&c);
    }

    #[test]
    fn empty_and_identity_circuits() {
        let c = Circuit::new(3);
        let fused = fuse(&c);
        assert!(fused.is_empty());
        assert_equivalent(&c);
    }

    #[test]
    fn fused_ops_stay_unitary() {
        let mut c = Circuit::new(4);
        for q in 0..4 {
            c.push(Gate::u3(q, 0.2 + q as f64, -0.3, 0.7));
        }
        for q in 0..3 {
            c.push(Gate::cu3(q, q + 1, 0.5, 0.1, -0.4));
        }
        for op in fuse(&c).ops() {
            if let FusedOp::Two { m, .. } = op {
                assert!(mat4_is_unitary(m, 1e-10));
            }
        }
        assert_equivalent(&c);
    }

    #[test]
    fn swap_qubit_order_is_an_involution() {
        let m = Gate::cu3(0, 1, 0.9, -0.2, 0.4).matrix2();
        assert_eq!(swap_qubit_order(&swap_qubit_order(&m)), m);
    }
}
