//! Full-unitary extraction and equivalence checking (verification helpers).
//!
//! Builds the dense 2ⁿ×2ⁿ unitary of a circuit column-by-column by
//! simulating each basis state. Intended for tests and small registers
//! (n ≤ 6); the transpiler's correctness tests compare circuits *up to
//! global phase* with [`equiv_up_to_phase`].

use qnat_sim::circuit::Circuit;
use qnat_sim::math::C64;
use qnat_sim::statevector::StateVector;

/// The dense unitary of `circuit` as `u[row][col]`.
///
/// # Panics
///
/// Panics if the register has more than 12 qubits (4096² entries).
pub fn circuit_unitary(circuit: &Circuit) -> Vec<Vec<C64>> {
    let n = circuit.n_qubits();
    assert!(n <= 12, "unitary extraction limited to 12 qubits");
    let dim = 1usize << n;
    let mut cols = Vec::with_capacity(dim);
    for c in 0..dim {
        let mut amps = vec![C64::ZERO; dim];
        amps[c] = C64::ONE;
        let mut psi = StateVector::from_amplitudes(amps);
        psi.run(circuit);
        cols.push(psi.amplitudes().to_vec());
    }
    // Transpose columns into row-major form.
    let mut u = vec![vec![C64::ZERO; dim]; dim];
    for (c, col) in cols.iter().enumerate() {
        for (r, &v) in col.iter().enumerate() {
            u[r][c] = v;
        }
    }
    u
}

/// Checks whether two circuits implement the same unitary up to a global
/// phase, within tolerance `tol` per matrix entry.
pub fn equiv_up_to_phase(a: &Circuit, b: &Circuit, tol: f64) -> bool {
    if a.n_qubits() != b.n_qubits() {
        return false;
    }
    let ua = circuit_unitary(a);
    let ub = circuit_unitary(b);
    // Find the first entry of ua with significant magnitude to anchor the
    // relative phase.
    let dim = ua.len();
    let mut phase: Option<C64> = None;
    for r in 0..dim {
        for c in 0..dim {
            if ua[r][c].abs() > 0.5 / dim as f64 + 1e-6 && ub[r][c].abs() > 1e-9 {
                phase = Some(ua[r][c] / ub[r][c]);
                break;
            }
        }
        if phase.is_some() {
            break;
        }
    }
    let Some(ph) = phase else { return false };
    if (ph.abs() - 1.0).abs() > 1e-6 {
        return false;
    }
    for r in 0..dim {
        for c in 0..dim {
            if !(ub[r][c] * ph).approx_eq(ua[r][c], tol) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use qnat_sim::gate::Gate;

    #[test]
    fn identity_circuit_gives_identity_unitary() {
        let c = Circuit::new(2);
        let u = circuit_unitary(&c);
        for r in 0..4 {
            for cc in 0..4 {
                let want = if r == cc { C64::ONE } else { C64::ZERO };
                assert!(u[r][cc].approx_eq(want, 1e-14));
            }
        }
    }

    #[test]
    fn x_gate_unitary() {
        let mut c = Circuit::new(1);
        c.push(Gate::x(0));
        let u = circuit_unitary(&c);
        assert!(u[0][1].approx_eq(C64::ONE, 1e-14));
        assert!(u[1][0].approx_eq(C64::ONE, 1e-14));
    }

    #[test]
    fn equivalence_detects_global_phase() {
        // Z vs RZ(π) differ by a global phase of i.
        let mut a = Circuit::new(1);
        a.push(Gate::z(0));
        let mut b = Circuit::new(1);
        b.push(Gate::rz(0, std::f64::consts::PI));
        assert!(equiv_up_to_phase(&a, &b, 1e-10));
    }

    #[test]
    fn equivalence_rejects_different_unitaries() {
        let mut a = Circuit::new(1);
        a.push(Gate::x(0));
        let mut b = Circuit::new(1);
        b.push(Gate::h(0));
        assert!(!equiv_up_to_phase(&a, &b, 1e-10));
    }

    #[test]
    fn hadamard_conjugation_identity() {
        // H X H = Z up to phase.
        let mut a = Circuit::new(1);
        a.push(Gate::h(0));
        a.push(Gate::x(0));
        a.push(Gate::h(0));
        let mut b = Circuit::new(1);
        b.push(Gate::z(0));
        assert!(equiv_up_to_phase(&a, &b, 1e-10));
    }
}
