//! Tracker-sourced calibration views for noise-adaptive compilation.
//!
//! Level-3 transpilation scores layouts against a [`DeviceModel`]'s error
//! rates. When a live calibration tracker (the `qnat-calib` crate)
//! estimates a device's *instantaneous* error rate, this module turns
//! that estimate into the drifted model the level-3 pipeline should
//! compile against — with one crucial property for plan caching:
//!
//! **The estimate is quantized before it touches the model.** Plan caches
//! key compiled artifacts on `DeviceModel::fingerprint()`, which hashes
//! the model's full JSON. Feeding a raw estimate through would change the
//! fingerprint on every jittery update and thrash the cache; snapping the
//! estimate to a `quant_step` grid first means only *meaningful* drift
//! (a full step of movement) produces a new fingerprint and recompiles,
//! while estimator noise inside one step reuses the cached plan.

use qnat_noise::device::DeviceModel;

/// Snaps `estimate` to the `step` grid: `round(estimate / step) · step`.
///
/// `step <= 0` disables quantization (the raw estimate passes through) —
/// callers that want cache-stable fingerprints should keep it positive.
/// The result is clamped to `[0, 1]`, matching the tracker's estimate
/// range.
pub fn quantize_estimate(estimate: f64, step: f64) -> f64 {
    let e = estimate.clamp(0.0, 1.0);
    if step <= 0.0 || !step.is_finite() {
        return e;
    }
    ((e / step).round() * step).clamp(0.0, 1.0)
}

/// The drifted [`DeviceModel`] a tracker estimate implies, quantized for
/// fingerprint stability.
///
/// `reference` is the error rate the tracker observed (or would observe)
/// at calibration time — the rate corresponding to drift scale 1. The
/// view scales both gate and readout errors by
/// `quantize(estimate) / reference`, so an estimate at the reference
/// returns (a clone of) the calibrated model and a doubled estimate
/// compiles against doubled error rates. Non-positive or non-finite
/// `reference` falls back to the unscaled model — there is no trustworthy
/// baseline to scale against.
pub fn calibrated_view(
    model: &DeviceModel,
    estimate: f64,
    reference: f64,
    quant_step: f64,
) -> DeviceModel {
    if reference <= 0.0 || !reference.is_finite() {
        return model.clone();
    }
    let q = quantize_estimate(estimate, quant_step);
    let scale = q / reference;
    model.drifted(scale, scale)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qnat_noise::presets;

    #[test]
    fn quantization_snaps_to_grid_and_clamps() {
        assert_eq!(quantize_estimate(0.123, 0.05), 0.1);
        assert_eq!(quantize_estimate(0.126, 0.05), 0.15000000000000002);
        assert_eq!(quantize_estimate(-3.0, 0.05), 0.0);
        assert_eq!(quantize_estimate(7.0, 0.05), 1.0);
        // Disabled quantization passes the clamped estimate through.
        assert_eq!(quantize_estimate(0.123, 0.0), 0.123);
    }

    #[test]
    fn jitter_within_a_step_keeps_the_fingerprint() {
        let model = presets::santiago();
        let a = calibrated_view(&model, 0.101, 0.1, 0.05);
        let b = calibrated_view(&model, 0.099, 0.1, 0.05);
        assert_eq!(a.fingerprint(), b.fingerprint(), "jitter must not recompile");
        let c = calibrated_view(&model, 0.16, 0.1, 0.05);
        assert_ne!(
            a.fingerprint(),
            c.fingerprint(),
            "a full quantization step of drift must recompile"
        );
    }

    #[test]
    fn reference_estimate_reproduces_the_calibrated_model() {
        let model = presets::santiago();
        let view = calibrated_view(&model, 0.1, 0.1, 0.05);
        assert_eq!(view.fingerprint(), model.drifted(1.0, 1.0).fingerprint());
        // A doubled estimate doubles the error scales.
        let hot = calibrated_view(&model, 0.2, 0.1, 0.05);
        assert_eq!(hot.fingerprint(), model.drifted(2.0, 2.0).fingerprint());
    }

    #[test]
    fn degenerate_reference_falls_back_to_the_static_model() {
        let model = presets::santiago();
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let view = calibrated_view(&model, 0.4, bad, 0.05);
            assert_eq!(view.fingerprint(), model.fingerprint());
        }
    }
}
