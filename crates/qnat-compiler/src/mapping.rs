//! Qubit layout and routing.
//!
//! Maps logical circuit qubits onto physical device qubits and inserts SWAP
//! gates when a two-qubit gate addresses a pair that is not directly
//! coupled. Two layout strategies are provided:
//!
//! * **Trivial** — logical `i` on physical `i` (Qiskit levels 0–2).
//! * **Noise-adaptive** — choose the connected window and assignment that
//!   minimize the error-weighted gate cost of the circuit (Qiskit level 3,
//!   the setting of the paper's Table 7).

use qnat_noise::device::DeviceModel;
use qnat_sim::circuit::Circuit;
use qnat_sim::gate::Gate;
use std::collections::VecDeque;

/// A logical→physical qubit assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layout {
    /// `physical[q]` is the physical qubit holding logical `q`.
    pub physical: Vec<usize>,
}

impl Layout {
    /// The trivial layout over `n` logical qubits.
    pub fn trivial(n: usize) -> Layout {
        Layout {
            physical: (0..n).collect(),
        }
    }
}

/// All-pairs shortest-path distances over the device coupling graph (BFS).
pub fn distances(model: &DeviceModel) -> Vec<Vec<usize>> {
    let n = model.n_qubits();
    let mut adj = vec![Vec::new(); n];
    for &(a, b) in model.coupling() {
        adj[a].push(b);
        adj[b].push(a);
    }
    let mut dist = vec![vec![usize::MAX; n]; n];
    for s in 0..n {
        dist[s][s] = 0;
        let mut queue = VecDeque::from([s]);
        while let Some(u) = queue.pop_front() {
            for &v in &adj[u] {
                if dist[s][v] == usize::MAX {
                    dist[s][v] = dist[s][u] + 1;
                    queue.push_back(v);
                }
            }
        }
    }
    dist
}

/// Error-weighted cost of running `circuit` under a candidate layout:
/// single-qubit gates cost their physical qubit's error, two-qubit gates
/// cost the edge error (or, if the pair is distant, a SWAP-inflated estimate
/// of `(3·(d−1)+1)` CX equivalents), and each qubit pays its readout error
/// once.
pub fn layout_cost(
    circuit: &Circuit,
    model: &DeviceModel,
    layout: &Layout,
    dist: &[Vec<usize>],
) -> f64 {
    let mut cost = 0.0;
    for g in circuit.gates() {
        if g.arity() == 1 {
            if !DeviceModel::is_virtual(g.kind) {
                cost += model.single_qubit_error(layout.physical[g.qubits[0]]).total();
            }
        } else {
            let (pa, pb) = (layout.physical[g.qubits[0]], layout.physical[g.qubits[1]]);
            let d = dist[pa][pb];
            if d == usize::MAX {
                return f64::INFINITY;
            }
            let cx_count = if d <= 1 { 1 } else { 3 * (d - 1) + 1 };
            // Approximate per-CX error by twice the edge spec (both qubits).
            let edge = 2.0 * model.two_qubit_error(pa, pb).total();
            cost += cx_count as f64 * edge.max(1e-12);
        }
    }
    for &p in &layout.physical {
        let m = model.readout_error(p);
        cost += (m.matrix()[0][1] + m.matrix()[1][0]) / 2.0;
    }
    cost
}

fn injective_maps(n_logical: usize, n_physical: usize) -> Vec<Vec<usize>> {
    // Enumerate all injective maps for small devices.
    let mut out = Vec::new();
    let mut current = Vec::with_capacity(n_logical);
    let mut used = vec![false; n_physical];
    fn rec(
        n_logical: usize,
        n_physical: usize,
        current: &mut Vec<usize>,
        used: &mut Vec<bool>,
        out: &mut Vec<Vec<usize>>,
    ) {
        if current.len() == n_logical {
            out.push(current.clone());
            return;
        }
        for p in 0..n_physical {
            if !used[p] {
                used[p] = true;
                current.push(p);
                rec(n_logical, n_physical, current, used, out);
                current.pop();
                used[p] = false;
            }
        }
    }
    rec(n_logical, n_physical, &mut current, &mut used, &mut out);
    out
}

/// Chooses a noise-adaptive layout minimizing [`layout_cost`]. Small devices
/// (≤ 7 physical qubits) are searched exhaustively; larger ones use a greedy
/// window (best-scoring connected region) with exhaustive assignment inside
/// when feasible.
pub fn noise_adaptive_layout(circuit: &Circuit, model: &DeviceModel) -> Layout {
    let n_log = circuit.n_qubits();
    let n_phys = model.n_qubits();
    assert!(n_log <= n_phys, "circuit larger than device");
    let dist = distances(model);

    if n_phys <= 7 {
        let mut best = Layout::trivial(n_log);
        let mut best_cost = layout_cost(circuit, model, &best, &dist);
        for cand in injective_maps(n_log, n_phys) {
            let layout = Layout { physical: cand };
            let c = layout_cost(circuit, model, &layout, &dist);
            if c < best_cost {
                best_cost = c;
                best = layout;
            }
        }
        return best;
    }

    // Greedy connected window on big devices.
    let qubit_score = |p: usize| -> f64 {
        let ro = model.readout_error(p);
        model.single_qubit_error(p).total()
            + (ro.matrix()[0][1] + ro.matrix()[1][0]) / 2.0
    };
    let mut adj = vec![Vec::new(); n_phys];
    for &(a, b) in model.coupling() {
        adj[a].push(b);
        adj[b].push(a);
    }
    let mut best_window: Option<Vec<usize>> = None;
    let mut best_window_score = f64::INFINITY;
    for start in 0..n_phys {
        let mut window = vec![start];
        while window.len() < n_log {
            let next = window
                .iter()
                .flat_map(|&w| adj[w].iter().copied())
                .filter(|p| !window.contains(p))
                .min_by(|&a, &b| qubit_score(a).total_cmp(&qubit_score(b)));
            match next {
                Some(p) => window.push(p),
                None => break,
            }
        }
        if window.len() == n_log {
            let score: f64 = window.iter().map(|&p| qubit_score(p)).sum();
            if score < best_window_score {
                best_window_score = score;
                best_window = Some(window);
            }
        }
    }
    // A device without a large-enough connected region degrades to the
    // trivial layout; routing then reports the unmappable pairs instead of
    // this pass panicking.
    let window = match best_window {
        Some(w) => w,
        None => return Layout::trivial(n_log),
    };
    // Assign the most two-qubit-active logical qubits to the best physical
    // qubits in the window.
    let mut activity = vec![0usize; n_log];
    for g in circuit.gates() {
        for k in 0..g.arity() {
            activity[g.qubits[k]] += if g.arity() == 2 { 3 } else { 1 };
        }
    }
    let mut logical_order: Vec<usize> = (0..n_log).collect();
    logical_order.sort_by_key(|&q| std::cmp::Reverse(activity[q]));
    let mut window_sorted = window;
    window_sorted.sort_by(|&a, &b| qubit_score(a).total_cmp(&qubit_score(b)));
    let mut physical = vec![0usize; n_log];
    for (rank, &q) in logical_order.iter().enumerate() {
        physical[q] = window_sorted[rank];
    }
    Layout { physical }
}

/// Routes a circuit under a layout: emits gates on physical qubits and
/// inserts SWAP chains for distant two-qubit gates. Returns the physical
/// circuit (over the full device register) and the *final* layout (SWAPs
/// permute which physical qubit holds each logical one).
pub fn route(circuit: &Circuit, model: &DeviceModel, layout: &Layout) -> (Circuit, Layout) {
    let n_phys = model.n_qubits();
    let dist = distances(model);
    let mut adj = vec![Vec::new(); n_phys];
    for &(a, b) in model.coupling() {
        adj[a].push(b);
        adj[b].push(a);
    }
    let no_coupling = model.coupling().is_empty();
    let mut phys_of = layout.physical.clone();
    let mut out = Circuit::new(n_phys);
    for g in circuit.gates() {
        match g.arity() {
            1 => {
                let mut pg = *g;
                pg.qubits[0] = phys_of[g.qubits[0]];
                out.push(pg);
            }
            _ => {
                let (la, lb) = (g.qubits[0], g.qubits[1]);
                if !no_coupling {
                    // Walk `la`'s physical qubit toward `lb`'s with SWAPs.
                    loop {
                        let (pa, pb) = (phys_of[la], phys_of[lb]);
                        // `<= 1` reaches coupled pairs; an unreachable pair
                        // (disconnected graph) would otherwise swap forever.
                        if dist[pa][pb] <= 1 || dist[pa][pb] == usize::MAX {
                            break;
                        }
                        // Move pa one step along a shortest path to pb. An
                        // isolated qubit has no step to take; emit the gate
                        // as-is and let backend validation flag the pair.
                        let next = match adj[pa].iter().min_by_key(|&&v| dist[v][pb]) {
                            Some(&v) => v,
                            None => break,
                        };
                        out.push(Gate::swap(pa, next));
                        // Whichever logical qubit lived on `next` moves to pa.
                        for p in phys_of.iter_mut() {
                            if *p == next {
                                *p = pa;
                            } else if *p == pa {
                                *p = next;
                            }
                        }
                    }
                }
                let mut pg = *g;
                pg.qubits[0] = phys_of[la];
                pg.qubits[1] = phys_of[lb];
                out.push(pg);
            }
        }
    }
    (
        out,
        Layout {
            physical: phys_of,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use qnat_noise::presets;
    use qnat_sim::statevector::simulate;

    #[test]
    fn trivial_layout_is_identity() {
        let l = Layout::trivial(4);
        assert_eq!(l.physical, vec![0, 1, 2, 3]);
    }

    #[test]
    fn distances_on_line() {
        let d = distances(&presets::santiago());
        assert_eq!(d[0][4], 4);
        assert_eq!(d[1][3], 2);
        assert_eq!(d[2][2], 0);
    }

    #[test]
    fn route_inserts_swaps_for_distant_pairs() {
        // CX(0, 3) on a line needs SWAPs.
        let mut c = Circuit::new(4);
        c.push(Gate::cx(0, 3));
        let model = presets::santiago();
        let (routed, final_layout) = route(&c, &model, &Layout::trivial(4));
        assert!(routed.len() > 1);
        // Every 2q gate in the routed circuit is on a coupled pair.
        for g in routed.gates().iter().filter(|g| g.arity() == 2) {
            assert!(
                model.are_coupled(g.qubits[0], g.qubits[1]),
                "{g} not coupled"
            );
        }
        // Layout changed.
        assert_ne!(final_layout.physical, vec![0, 1, 2, 3]);
    }

    #[test]
    fn routing_preserves_semantics_up_to_layout() {
        // Prepare a state, route, and compare logical expectations through
        // the final layout.
        let mut c = Circuit::new(4);
        c.push(Gate::ry(0, 0.7));
        c.push(Gate::ry(3, 1.1));
        c.push(Gate::cx(0, 3));
        c.push(Gate::ry(1, -0.4));
        c.push(Gate::cx(1, 2));
        let model = presets::santiago();
        let (routed, fl) = route(&c, &model, &Layout::trivial(4));
        let logical = simulate(&c);
        let mut physical = qnat_sim::StateVector::zero_state(5);
        physical.run(&routed);
        for q in 0..4 {
            assert!(
                (logical.expect_z(q) - physical.expect_z(fl.physical[q])).abs() < 1e-10,
                "logical qubit {q}"
            );
        }
    }

    #[test]
    fn adaptive_layout_beats_trivial_cost() {
        let mut c = Circuit::new(3);
        for _ in 0..5 {
            c.push(Gate::sx(0));
            c.push(Gate::sx(1));
            c.push(Gate::sx(2));
            c.push(Gate::cx(0, 1));
            c.push(Gate::cx(1, 2));
        }
        let model = presets::yorktown();
        let dist = distances(&model);
        let adaptive = noise_adaptive_layout(&c, &model);
        let c_triv = layout_cost(&c, &model, &Layout::trivial(3), &dist);
        let c_adap = layout_cost(&c, &model, &adaptive, &dist);
        assert!(c_adap <= c_triv, "adaptive {c_adap} vs trivial {c_triv}");
    }

    #[test]
    fn adaptive_layout_on_large_device_is_valid() {
        let mut c = Circuit::new(10);
        for q in 0..10 {
            c.push(Gate::sx(q));
        }
        for q in 0..9 {
            c.push(Gate::cx(q, q + 1));
        }
        let model = presets::melbourne();
        let layout = noise_adaptive_layout(&c, &model);
        let mut seen = layout.physical.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 10, "layout must be injective");
        assert!(layout.physical.iter().all(|&p| p < 15));
    }

    #[test]
    fn layout_cost_penalizes_distance() {
        let model = presets::santiago();
        let dist = distances(&model);
        let mut c = Circuit::new(2);
        c.push(Gate::cx(0, 1));
        let near = layout_cost(
            &c,
            &model,
            &Layout {
                physical: vec![0, 1],
            },
            &dist,
        );
        let far = layout_cost(
            &c,
            &model,
            &Layout {
                physical: vec![0, 4],
            },
            &dist,
        );
        assert!(far > near);
    }
}
