//! Transpilation pipeline: layout → routing → basis decomposition →
//! peephole optimization.
//!
//! Mirrors the Qiskit configuration of the paper: optimization level 2 for
//! all main experiments, level 3 (adding noise-adaptive layout) for the
//! Table 7 study. The result carries the *window* of physical qubits used
//! and the final logical→physical map so that measurement and readout-error
//! handling address the right wires.

use crate::decompose::decompose_to_basis;
use crate::mapping::{noise_adaptive_layout, Layout};
use crate::optimize::{merge_rz, optimize};
use qnat_noise::device::{DeviceModel, InvalidDeviceError};
use qnat_sim::circuit::Circuit;

/// Transpiler options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TranspileOptions {
    /// Optimization level 0–3 (paper default: 2; Table 7 uses 3).
    pub opt_level: u8,
}

impl Default for TranspileOptions {
    fn default() -> Self {
        TranspileOptions { opt_level: 2 }
    }
}

impl TranspileOptions {
    /// Options for a given optimization level.
    ///
    /// # Panics
    ///
    /// Panics if `level > 3`.
    pub fn level(level: u8) -> Self {
        assert!(level <= 3, "optimization levels are 0..=3");
        TranspileOptions { opt_level: level }
    }
}

/// The output of transpilation.
#[derive(Debug, Clone)]
pub struct Transpiled {
    /// Basis-gate circuit over the *window* register (relabeled physical
    /// qubits `0..window.len()`).
    pub circuit: Circuit,
    /// Physical device qubits used, in window order (window index →
    /// device qubit).
    pub window: Vec<usize>,
    /// Final logical→window-index map (after routing SWAPs).
    pub layout: Vec<usize>,
    /// Sub-device noise model over the window, relabeled — run the circuit
    /// on this with the hardware emulator.
    pub device_view: DeviceModel,
}

impl Transpiled {
    /// Extracts the logical qubit values from a window-indexed per-qubit
    /// vector (e.g. measured expectations).
    pub fn logical_values<T: Copy>(&self, window_values: &[T]) -> Vec<T> {
        self.layout.iter().map(|&w| window_values[w]).collect()
    }
}

/// Routes `circuit` under `layout` and extracts the window of physical
/// qubits actually used, relabeled to `0..window.len()`.
///
/// Returns `(windowed circuit, window, logical→window layout, sub-device)`.
/// Gate parameters are preserved in order, so the result can be lowered
/// symbolically.
///
/// # Errors
///
/// Returns [`InvalidDeviceError`] if the window cannot be extracted.
pub fn route_and_window(
    circuit: &Circuit,
    model: &DeviceModel,
    initial: &crate::mapping::Layout,
) -> Result<(Circuit, Vec<usize>, Vec<usize>, DeviceModel), InvalidDeviceError> {
    let (routed_full, final_layout) = crate::mapping::route(circuit, model, initial);
    let mut window: Vec<usize> = Vec::new();
    for g in routed_full.gates() {
        for k in 0..g.arity() {
            if !window.contains(&g.qubits[k]) {
                window.push(g.qubits[k]);
            }
        }
    }
    for &p in &final_layout.physical {
        if !window.contains(&p) {
            window.push(p);
        }
    }
    window.sort_unstable();
    let device_view = model.subdevice(&window)?;
    let window_index = |p: usize| -> Result<usize, InvalidDeviceError> {
        window
            .iter()
            .position(|&w| w == p)
            .ok_or_else(|| InvalidDeviceError {
                reason: format!("physical qubit {p} missing from window {window:?}"),
            })
    };
    let mut windowed = Circuit::new(window.len());
    for g in routed_full.gates() {
        let mut wg = *g;
        for k in 0..g.arity() {
            wg.qubits[k] = window_index(g.qubits[k])?;
        }
        windowed.push(wg);
    }
    let layout: Vec<usize> = final_layout
        .physical
        .iter()
        .map(|&p| window_index(p))
        .collect::<Result<_, _>>()?;
    Ok((windowed, window, layout, device_view))
}

/// Transpiles `circuit` for `model`.
///
/// # Errors
///
/// Returns [`InvalidDeviceError`] if the circuit needs more qubits than the
/// device provides.
pub fn transpile(
    circuit: &Circuit,
    model: &DeviceModel,
    options: TranspileOptions,
) -> Result<Transpiled, InvalidDeviceError> {
    if circuit.n_qubits() > model.n_qubits() {
        return Err(InvalidDeviceError {
            reason: format!(
                "circuit needs {} qubits, device {} has {}",
                circuit.n_qubits(),
                model.name(),
                model.n_qubits()
            ),
        });
    }
    // 1. Layout.
    let initial = if options.opt_level >= 3 {
        noise_adaptive_layout(circuit, model)
    } else {
        Layout::trivial(circuit.n_qubits())
    };
    // 2–3. Routing on the full device graph + window extraction.
    let (windowed, window, layout, device_view) = route_and_window(circuit, model, &initial)?;
    // 4. Basis decomposition.
    let mut lowered = decompose_to_basis(&windowed);
    // 5. Peephole optimization.
    match options.opt_level {
        0 => {}
        1 => {
            merge_rz(&mut lowered);
        }
        _ => optimize(&mut lowered),
    }
    Ok(Transpiled {
        circuit: lowered,
        window,
        layout,
        device_view,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::is_basis_gate;
    use qnat_noise::presets;
    use qnat_sim::gate::Gate;
    use qnat_sim::statevector::simulate;

    fn sample_circuit() -> Circuit {
        let mut c = Circuit::new(4);
        c.push(Gate::ry(0, 0.6));
        c.push(Gate::ry(1, -0.2));
        c.push(Gate::ry(2, 1.4));
        c.push(Gate::ry(3, 0.9));
        c.push(Gate::cu3(0, 1, 0.5, 0.1, -0.3));
        c.push(Gate::cu3(2, 3, -0.7, 0.4, 0.2));
        c.push(Gate::cu3(0, 3, 0.3, -0.1, 0.6)); // distant pair → routing
        c
    }

    #[test]
    fn transpiled_circuit_is_basis_only_and_coupled() {
        let model = presets::santiago();
        let t = transpile(&sample_circuit(), &model, TranspileOptions::default()).unwrap();
        assert!(t.circuit.gates().iter().all(|g| is_basis_gate(g.kind)));
        for g in t.circuit.gates().iter().filter(|g| g.arity() == 2) {
            assert!(
                t.device_view.are_coupled(g.qubits[0], g.qubits[1]),
                "{g} not coupled in window"
            );
        }
    }

    #[test]
    fn transpilation_preserves_logical_expectations() {
        let c = sample_circuit();
        let model = presets::santiago();
        for level in 0..=3 {
            let t = transpile(&c, &model, TranspileOptions::level(level)).unwrap();
            let ideal = simulate(&c);
            let mut psi = qnat_sim::StateVector::zero_state(t.circuit.n_qubits());
            psi.run(&t.circuit);
            let window_z = psi.expect_all_z();
            let logical_z = t.logical_values(&window_z);
            for q in 0..4 {
                assert!(
                    (logical_z[q] - ideal.expect_z(q)).abs() < 1e-8,
                    "level {level} qubit {q}: {} vs {}",
                    logical_z[q],
                    ideal.expect_z(q)
                );
            }
        }
    }

    #[test]
    fn higher_levels_do_not_increase_gate_count() {
        let c = sample_circuit();
        let model = presets::belem();
        let n0 = transpile(&c, &model, TranspileOptions::level(0))
            .unwrap()
            .circuit
            .len();
        let n2 = transpile(&c, &model, TranspileOptions::level(2))
            .unwrap()
            .circuit
            .len();
        assert!(n2 <= n0, "level 2 ({n2}) vs level 0 ({n0})");
    }

    #[test]
    fn oversized_circuit_rejected() {
        let c = Circuit::new(9);
        assert!(transpile(&c, &presets::santiago(), TranspileOptions::default()).is_err());
    }

    #[test]
    fn window_fits_on_large_device() {
        let mut c = Circuit::new(3);
        c.push(Gate::cx(0, 1));
        c.push(Gate::cx(1, 2));
        c.push(Gate::sx(0));
        let model = presets::melbourne();
        let t = transpile(&c, &model, TranspileOptions::level(3)).unwrap();
        assert!(t.window.len() <= 5, "window {:?}", t.window);
        assert_eq!(t.device_view.n_qubits(), t.window.len());
    }

    #[test]
    fn level3_layout_cost_not_worse() {
        use crate::mapping::{distances, layout_cost, Layout};
        let c = sample_circuit();
        let model = presets::yorktown();
        let dist = distances(&model);
        let adaptive = crate::mapping::noise_adaptive_layout(&c, &model);
        let triv = layout_cost(&c, &model, &Layout::trivial(4), &dist);
        let adap = layout_cost(&c, &model, &adaptive, &dist);
        assert!(adap <= triv + 1e-12);
    }
}
