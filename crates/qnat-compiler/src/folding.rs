//! Gate folding for zero-noise extrapolation.
//!
//! ZNE needs the *same unitary* executed at amplified noise levels. On
//! hardware (and on this repo's density-matrix emulator, whose error
//! channels fire per gate) the standard trick is **folding**: replacing a
//! unitary `G` by `G·(G†·G)^k` multiplies the gate count — and therefore
//! the accumulated gate noise — by the odd factor `2k+1` while leaving
//! the implemented unitary bit-for-bit unchanged on a noise-free
//! simulator (pinned to 1e-12 by `tests/folding_props.rs`).
//!
//! Two granularities:
//!
//! * [`FoldStrategy::Global`] folds the whole circuit: `C` becomes
//!   `C (C† C)^k`. One inversion boundary; the noise amplification is
//!   concentrated at full-circuit scale.
//! * [`FoldStrategy::PerGate`] folds every gate in place:
//!   `g` becomes `g (g† g)^k`. Noise is amplified uniformly along the
//!   circuit, which tracks the "each gate's channel fires `2k+1` times"
//!   model more faithfully and keeps intermediate states on the original
//!   trajectory.
//!
//! Only **odd** scales exist: folding inserts inverse/forward *pairs*,
//! so the reachable noise multipliers are 1, 3, 5, … — an even scale is
//! a typed [`FoldError`], not a silent rounding.
//!
//! `SqrtH` and `SqrtSwap` have no closed-form single-gate inverse in the
//! gate set ([`qnat_sim::circuit::try_invert_gate`] returns `None`), but
//! their squares are the self-inverse `H` resp. `SWAP`, and any operator
//! commutes with functions of itself — so `g⁻¹ = g·g² = g·base` is a
//! two-gate inverse the folder emits instead of panicking.

use qnat_sim::circuit::{try_invert_gate, Circuit};
use qnat_sim::gate::{Gate, GateKind};
use std::error::Error;
use std::fmt;

/// Where the folding pass inserts the `G†·G` identity pairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FoldStrategy {
    /// Fold the whole circuit: `C → C (C† C)^k`.
    Global,
    /// Fold each gate in place: `g → g (g† g)^k`.
    PerGate,
}

impl FoldStrategy {
    /// Canonical lowercase name (`"global"` / `"per_gate"`), the wire
    /// encoding.
    pub fn name(self) -> &'static str {
        match self {
            FoldStrategy::Global => "global",
            FoldStrategy::PerGate => "per_gate",
        }
    }

    /// Parses [`FoldStrategy::name`] output.
    pub fn from_name(name: &str) -> Option<FoldStrategy> {
        match name {
            "global" => Some(FoldStrategy::Global),
            "per_gate" => Some(FoldStrategy::PerGate),
            _ => None,
        }
    }
}

/// A noise scale the folding construction cannot reach.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FoldError {
    /// Folding inserts inverse/forward pairs, so only odd multipliers
    /// 1, 3, 5, … exist; this scale is even.
    EvenScale {
        /// The requested scale.
        scale: usize,
    },
    /// Scale 0 would mean "run nothing"; the zero-noise value is what
    /// extrapolation *estimates*, never a circuit that runs.
    ZeroScale,
}

impl fmt::Display for FoldError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FoldError::EvenScale { scale } => write!(
                f,
                "noise scale {scale} is even; gate folding reaches odd scales only (1, 3, 5, …)"
            ),
            FoldError::ZeroScale => {
                write!(f, "noise scale 0 is the extrapolation target, not a runnable circuit")
            }
        }
    }
}

impl Error for FoldError {}

/// Appends gates implementing `g⁻¹` to `out` — one gate via
/// [`try_invert_gate`] where a closed form exists, otherwise the
/// commuting two-gate identity `g⁻¹ = g·base` for the square-root gates
/// (`base = H` for `SqrtH`, `SWAP` for `SqrtSwap`).
fn push_inverse(out: &mut Circuit, g: &Gate) {
    match try_invert_gate(g) {
        Some(inv) => out.push(inv),
        None => {
            // √X commutes with X = (√X)², so the two orders agree; emit
            // base-then-root to mirror reversed execution order.
            match g.kind {
                GateKind::SqrtH => out.push(Gate::h(g.qubits[0])),
                GateKind::SqrtSwap => out.push(Gate::swap(g.qubits[0], g.qubits[1])),
                _ => unreachable!("try_invert_gate only declines SqrtH/SqrtSwap"),
            }
            out.push(*g);
        }
    }
}

/// Appends the inverse circuit `C†` of `c` to `out` (gates reversed,
/// each inverted via [`push_inverse`] — never panics, unlike
/// [`Circuit::inverse`]).
fn push_inverse_circuit(out: &mut Circuit, c: &Circuit) {
    for g in c.gates().iter().rev() {
        push_inverse(out, g);
    }
}

/// Folds `circuit` to noise scale `scale` (odd, ≥ 1) with the given
/// strategy. Scale 1 returns the circuit unchanged. The folded circuit
/// implements the identical unitary; only its gate count (and therefore
/// its simulated noise exposure) grows.
///
/// # Errors
///
/// [`FoldError::ZeroScale`] for scale 0 and [`FoldError::EvenScale`]
/// for any even scale.
pub fn fold_circuit(
    circuit: &Circuit,
    scale: usize,
    strategy: FoldStrategy,
) -> Result<Circuit, FoldError> {
    if scale == 0 {
        return Err(FoldError::ZeroScale);
    }
    if scale.is_multiple_of(2) {
        return Err(FoldError::EvenScale { scale });
    }
    let k = (scale - 1) / 2;
    if k == 0 {
        return Ok(circuit.clone());
    }
    let mut out = Circuit::new(circuit.n_qubits());
    match strategy {
        FoldStrategy::Global => {
            for g in circuit.gates() {
                out.push(*g);
            }
            for _ in 0..k {
                push_inverse_circuit(&mut out, circuit);
                for g in circuit.gates() {
                    out.push(*g);
                }
            }
        }
        FoldStrategy::PerGate => {
            for g in circuit.gates() {
                out.push(*g);
                for _ in 0..k {
                    push_inverse(&mut out, g);
                    out.push(*g);
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qnat_sim::statevector::StateVector;

    fn sample_circuit() -> Circuit {
        let mut c = Circuit::new(3);
        c.push(Gate::h(0));
        c.push(Gate::sqrt_h(1));
        c.push(Gate::cx(0, 1));
        c.push(Gate::ry(2, 0.37));
        c.push(Gate::sqrt_swap(1, 2));
        c.push(Gate::u3(0, 0.4, -0.2, 0.9));
        c
    }

    fn state(c: &Circuit) -> Vec<(f64, f64)> {
        let mut psi = StateVector::zero_state(c.n_qubits());
        psi.run(c);
        psi.amplitudes().iter().map(|a| (a.re, a.im)).collect()
    }

    #[test]
    fn even_and_zero_scales_are_typed_errors() {
        let c = sample_circuit();
        assert_eq!(
            fold_circuit(&c, 2, FoldStrategy::Global),
            Err(FoldError::EvenScale { scale: 2 })
        );
        assert_eq!(fold_circuit(&c, 0, FoldStrategy::PerGate), Err(FoldError::ZeroScale));
    }

    #[test]
    fn scale_one_is_identity_fold() {
        let c = sample_circuit();
        let f = fold_circuit(&c, 1, FoldStrategy::Global).expect("fold");
        assert_eq!(f.gates(), c.gates());
    }

    #[test]
    fn folded_gate_counts_scale_as_expected() {
        let c = sample_circuit();
        // Global scale 3: C C† C. C has 6 gates, C† has 8 (two two-gate
        // inverses for the roots) → 6 + 8 + 6 = 20.
        let g3 = fold_circuit(&c, 3, FoldStrategy::Global).expect("fold");
        assert_eq!(g3.len(), 20);
        // Per-gate scale 3: 4 plain gates ×3 + 2 root gates ×4 = 20.
        let p3 = fold_circuit(&c, 3, FoldStrategy::PerGate).expect("fold");
        assert_eq!(p3.len(), 20);
    }

    #[test]
    fn folding_preserves_the_state_including_root_gates() {
        let c = sample_circuit();
        let want = state(&c);
        for strategy in [FoldStrategy::Global, FoldStrategy::PerGate] {
            for scale in [3usize, 5, 7] {
                let folded = fold_circuit(&c, scale, strategy).expect("fold");
                let got = state(&folded);
                for (a, b) in want.iter().zip(&got) {
                    assert!(
                        (a.0 - b.0).abs() < 1e-12 && (a.1 - b.1).abs() < 1e-12,
                        "{strategy:?} scale {scale} diverged"
                    );
                }
            }
        }
    }

    #[test]
    fn strategy_names_round_trip() {
        for s in [FoldStrategy::Global, FoldStrategy::PerGate] {
            assert_eq!(FoldStrategy::from_name(s.name()), Some(s));
        }
        assert_eq!(FoldStrategy::from_name("diagonal"), None);
    }
}
