//! Euler-angle (ZYZ) decomposition of single-qubit unitaries and their
//! lowering to the IBMQ basis `{RZ, SX, X}`.
//!
//! Any 2×2 unitary equals `e^{iα}·RZ(φ)·RY(θ)·RZ(λ)`, i.e. `U3(θ, φ, λ)` up
//! to a global phase. `U3` is then lowered via the McKay decomposition:
//! `U3(θ, φ, λ) ≅ RZ(φ+π) · SX · RZ(θ+π) · SX · RZ(λ)` (matrix product
//! order), which uses at most two physical SX pulses — `RZ` is a virtual
//! frame change and free on hardware.

use qnat_sim::gate::Gate;
use qnat_sim::math::Mat2;
use std::f64::consts::PI;

/// Numeric tolerance for recognizing special angles.
const TOL: f64 = 1e-9;

/// ZYZ Euler angles `(theta, phi, lambda)` such that
/// `U = e^{iα}·RZ(phi)·RY(theta)·RZ(lambda)` — equivalently
/// `U ≅ U3(theta, phi, lambda)` up to global phase.
pub fn zyz_angles(u: &Mat2) -> (f64, f64, f64) {
    // |u00| = cos(θ/2), |u10| = sin(θ/2).
    let c = u[0][0].abs().clamp(0.0, 1.0);
    let s = u[1][0].abs().clamp(0.0, 1.0);
    let theta = 2.0 * s.atan2(c);
    if s < TOL {
        // Diagonal: only φ+λ matters; put it all in λ.
        let lam = u[1][1].im.atan2(u[1][1].re) - u[0][0].im.atan2(u[0][0].re);
        return (0.0, 0.0, lam);
    }
    if c < TOL {
        // Anti-diagonal (θ = π): U3(π,φ,λ) = e^{iα}[[0, −e^{iλ}], [e^{iφ}, 0]];
        // only φ−λ is physical, so fix λ = 0 and read φ from u10/(−u01).
        let ratio = u[1][0] / (-u[0][1]);
        return (PI, normalize_angle(ratio.im.atan2(ratio.re)), 0.0);
    }
    // Generic case.
    let a00 = u[0][0].im.atan2(u[0][0].re); // α − (φ+λ)/2
    let a10 = u[1][0].im.atan2(u[1][0].re); // α + (φ−λ)/2
    let a11 = u[1][1].im.atan2(u[1][1].re); // α + (φ+λ)/2
    let phi_plus_lam = a11 - a00;
    let phi_minus_lam = 2.0 * a10 - a00 - a11;
    let phi = normalize_angle((phi_plus_lam + phi_minus_lam) / 2.0);
    let lam = normalize_angle((phi_plus_lam - phi_minus_lam) / 2.0);
    (theta, phi, lam)
}

/// Normalizes an angle to `(−π, π]`.
pub fn normalize_angle(a: f64) -> f64 {
    let mut a = a % (2.0 * PI);
    if a <= -PI {
        a += 2.0 * PI;
    } else if a > PI {
        a -= 2.0 * PI;
    }
    a
}

/// Lowers `U3(theta, phi, lambda)` on qubit `q` to basis gates, in circuit
/// (execution) order. Uses zero SX pulses for diagonal gates, one for
/// θ = ±π/2, two otherwise.
pub fn u3_to_basis(q: usize, theta: f64, phi: f64, lambda: f64) -> Vec<Gate> {
    let theta = normalize_angle(theta);
    let mut out = Vec::with_capacity(5);
    let push_rz = |v: &mut Vec<Gate>, a: f64| {
        let a = normalize_angle(a);
        if a.abs() > TOL {
            v.push(Gate::rz(q, a));
        }
    };
    if theta.abs() < TOL {
        // Pure phase: RZ(φ+λ).
        push_rz(&mut out, phi + lambda);
        return out;
    }
    if (theta - PI / 2.0).abs() < TOL {
        // U3(π/2, φ, λ) ≅ RZ(φ+π/2)·SX·RZ(λ−π/2).
        push_rz(&mut out, lambda - PI / 2.0);
        out.push(Gate::sx(q));
        push_rz(&mut out, phi + PI / 2.0);
        return out;
    }
    if (theta + PI / 2.0).abs() < TOL {
        // U3(−π/2, φ, λ) = U3(π/2, φ+π, λ+π) up to phase.
        return u3_to_basis(q, PI / 2.0, phi + PI, lambda + PI);
    }
    // McKay: U3(θ,φ,λ) ≅ RZ(φ+π)·SX·RZ(θ+π)·SX·RZ(λ)  (matrix order);
    // circuit order is reversed.
    push_rz(&mut out, lambda);
    out.push(Gate::sx(q));
    push_rz(&mut out, theta + PI);
    out.push(Gate::sx(q));
    push_rz(&mut out, phi + PI);
    out
}

/// Lowers an arbitrary single-qubit gate matrix to basis gates (circuit
/// order), up to global phase.
pub fn mat2_to_basis(q: usize, u: &Mat2) -> Vec<Gate> {
    let (theta, phi, lam) = zyz_angles(u);
    u3_to_basis(q, theta, phi, lam)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unitary::equiv_up_to_phase;
    use qnat_sim::circuit::Circuit;

    fn check_gate(g: Gate) {
        let mut reference = Circuit::new(1);
        reference.push(g);
        let mut lowered = Circuit::new(1);
        lowered.extend(mat2_to_basis(0, &g.matrix1()));
        assert!(
            equiv_up_to_phase(&reference, &lowered, 1e-9),
            "lowering of {g} wrong:\n{lowered}"
        );
    }

    #[test]
    fn zyz_recovers_standard_gates() {
        for g in [
            Gate::x(0),
            Gate::y(0),
            Gate::z(0),
            Gate::h(0),
            Gate::s(0),
            Gate::sdg(0),
            Gate::t(0),
            Gate::sx(0),
            Gate::sxdg(0),
            Gate::sqrt_h(0),
            Gate::id(0),
        ] {
            check_gate(g);
        }
    }

    #[test]
    fn zyz_recovers_rotations() {
        for &a in &[0.0, 0.1, -0.7, 1.3, PI / 2.0, -PI / 2.0, PI, 2.9, -3.1] {
            check_gate(Gate::rx(0, a));
            check_gate(Gate::ry(0, a));
            check_gate(Gate::rz(0, a));
            check_gate(Gate::p(0, a));
        }
    }

    #[test]
    fn zyz_recovers_u_gates() {
        check_gate(Gate::u2(0, 0.4, -0.9));
        check_gate(Gate::u2(0, 0.0, 0.0));
        for &(t, p, l) in &[
            (0.7, 0.3, -0.5),
            (2.8, -1.2, 0.9),
            (PI / 2.0, 1.0, 2.0),
            (PI, 0.5, -0.5),
            (1e-12, 0.4, 0.3),
        ] {
            check_gate(Gate::u3(0, t, p, l));
        }
    }

    #[test]
    fn sx_count_is_minimal() {
        // Diagonal gate: no SX.
        let g = Gate::rz(0, 0.8);
        let basis = mat2_to_basis(0, &g.matrix1());
        assert!(basis.iter().all(|b| b.kind != qnat_sim::GateKind::Sx));
        // Hadamard: θ = π/2 → one SX.
        let basis = mat2_to_basis(0, &Gate::h(0).matrix1());
        let n_sx = basis
            .iter()
            .filter(|b| b.kind == qnat_sim::GateKind::Sx)
            .count();
        assert_eq!(n_sx, 1, "H should lower to a single SX: {basis:?}");
    }

    #[test]
    fn normalize_angle_range() {
        for &a in &[0.0, PI, -PI, 3.5 * PI, -7.1, 100.0] {
            let n = normalize_angle(a);
            assert!(n > -PI - 1e-12 && n <= PI + 1e-12);
            // Same angle modulo 2π.
            assert!(((a - n) / (2.0 * PI) - ((a - n) / (2.0 * PI)).round()).abs() < 1e-9);
        }
    }
}
