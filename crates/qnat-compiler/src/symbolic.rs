//! Parameter-tracking (symbolic) lowering to basis gates.
//!
//! Noise-aware training needs gradients of circuits that were *compiled to
//! the hardware basis and then noise-injected* (paper §3.2). The numeric
//! transpiler loses the map from logical angles to compiled angles, so this
//! module lowers parameterized gates with **affine angle tracking**: every
//! compiled RZ angle is recorded as `c + Σ kᵢ·θᵢ` over the logical flat
//! parameters. The gate *structure* of the lowering is parameter-independent
//! (no special-casing on current values), so a circuit is lowered once and
//! re-bound each training step; gradients from the adjoint engine chain back
//! through the affine map by a sparse transpose-multiply.

use crate::decompose::is_basis_gate;
use qnat_sim::circuit::Circuit;
use qnat_sim::gate::{Gate, GateKind};
use std::f64::consts::{FRAC_PI_2, PI};

/// An angle that is affine in the logical parameters:
/// `angle = constant + Σ coeff·θ[index]`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AffineAngle {
    /// Constant offset.
    pub constant: f64,
    /// `(logical flat parameter index, coefficient)` terms.
    pub terms: Vec<(usize, f64)>,
}

impl AffineAngle {
    /// A constant angle.
    pub fn constant(c: f64) -> Self {
        AffineAngle {
            constant: c,
            terms: Vec::new(),
        }
    }

    /// A pure `coeff·θ[index]` term plus offset.
    pub fn term(index: usize, coeff: f64, constant: f64) -> Self {
        AffineAngle {
            constant,
            terms: vec![(index, coeff)],
        }
    }

    /// Evaluates the angle for concrete logical parameters.
    pub fn eval(&self, params: &[f64]) -> f64 {
        self.constant
            + self
                .terms
                .iter()
                .map(|&(i, k)| k * params[i])
                .sum::<f64>()
    }
}

/// A lowered circuit template with its angle map.
#[derive(Debug, Clone, PartialEq)]
pub struct SymbolicLowered {
    /// Basis-gate template. Parameter values in the template correspond to
    /// all-zero logical parameters; use [`SymbolicLowered::bind`].
    pub circuit: Circuit,
    /// One affine angle per flat parameter slot of `circuit`
    /// (in [`Circuit::param_slots`] order).
    pub angles: Vec<AffineAngle>,
    /// Number of logical parameters.
    pub n_logical: usize,
}

impl SymbolicLowered {
    /// Binds logical parameter values, returning a runnable circuit.
    ///
    /// # Panics
    ///
    /// Panics if `params.len() != n_logical`.
    pub fn bind(&self, params: &[f64]) -> Circuit {
        assert_eq!(params.len(), self.n_logical, "logical parameter count");
        let values: Vec<f64> = self.angles.iter().map(|a| a.eval(params)).collect();
        let mut c = self.circuit.clone();
        c.set_parameters(&values);
        c
    }

    /// Chains gradients w.r.t. compiled angles back to logical parameters:
    /// `g_logical[j] = Σ_s coeff(s, j) · g_compiled[s]`.
    ///
    /// # Panics
    ///
    /// Panics if `compiled.len()` disagrees with the template.
    pub fn chain_gradient(&self, compiled: &[f64]) -> Vec<f64> {
        assert_eq!(compiled.len(), self.angles.len(), "compiled grad length");
        let mut out = vec![0.0; self.n_logical];
        for (a, &g) in self.angles.iter().zip(compiled) {
            for &(i, k) in &a.terms {
                out[i] += k * g;
            }
        }
        out
    }
}

/// One lowered gate: the gate shape plus (for parameterized slots) affine
/// angles.
struct Emit {
    gate: Gate,
    angles: Vec<AffineAngle>,
}

fn fixed(gate: Gate) -> Emit {
    Emit {
        gate,
        angles: Vec::new(),
    }
}

fn rz(q: usize, angle: AffineAngle) -> Emit {
    Emit {
        gate: Gate::rz(q, 0.0),
        angles: vec![angle],
    }
}

/// McKay form of `U3(θ, φ, λ)` with affine angles (always the generic
/// 2-pulse variant so the structure never depends on values):
/// circuit order `RZ(λ) · SX · RZ(θ+π) · SX · RZ(φ+π)`.
fn u3_affine(q: usize, theta: AffineAngle, phi: AffineAngle, lambda: AffineAngle) -> Vec<Emit> {
    let mut phi_pi = phi;
    phi_pi.constant += PI;
    let mut theta_pi = theta;
    theta_pi.constant += PI;
    vec![
        rz(q, lambda),
        fixed(Gate::sx(q)),
        rz(q, theta_pi),
        fixed(Gate::sx(q)),
        rz(q, phi_pi),
    ]
}

fn scale_affine(a: &AffineAngle, k: f64) -> AffineAngle {
    AffineAngle {
        constant: a.constant * k,
        terms: a.terms.iter().map(|&(i, c)| (i, c * k)).collect(),
    }
}

fn add_affine(a: &AffineAngle, b: &AffineAngle) -> AffineAngle {
    let mut out = a.clone();
    out.constant += b.constant;
    for &(i, c) in &b.terms {
        if let Some(t) = out.terms.iter_mut().find(|(j, _)| *j == i) {
            t.1 += c;
        } else {
            out.terms.push((i, c));
        }
    }
    out
}

/// Lowers one gate whose parameter slots start at logical flat index
/// `base`.
fn lower_gate(g: &Gate, base: usize) -> Vec<Emit> {
    use GateKind::*;
    let q = g.qubits[0];
    let (a, b) = (g.qubits[0], g.qubits[1]);
    let slot = |k: usize| AffineAngle::term(base + k, 1.0, 0.0);
    match g.kind {
        // Already basis.
        Rz => vec![rz(q, slot(0))],
        Sx | X | Cx => vec![fixed(*g)],
        Id => vec![],
        // Virtual-equivalent diagonals.
        P => vec![rz(q, slot(0))],
        Z => vec![rz(q, AffineAngle::constant(PI))],
        S => vec![rz(q, AffineAngle::constant(FRAC_PI_2))],
        Sdg => vec![rz(q, AffineAngle::constant(-FRAC_PI_2))],
        T => vec![rz(q, AffineAngle::constant(PI / 4.0))],
        Tdg => vec![rz(q, AffineAngle::constant(-PI / 4.0))],
        // Single-qubit rotations as U3 specializations.
        Rx => u3_affine(
            q,
            slot(0),
            AffineAngle::constant(-FRAC_PI_2),
            AffineAngle::constant(FRAC_PI_2),
        ),
        Ry => u3_affine(q, slot(0), AffineAngle::constant(0.0), AffineAngle::constant(0.0)),
        U2 => u3_affine(q, AffineAngle::constant(FRAC_PI_2), slot(0), slot(1)),
        U3 => u3_affine(q, slot(0), slot(1), slot(2)),
        // Fixed 1q gates: H = U3(π/2, 0, π), Y = U3(π, π/2, π/2),
        // SXdg = U3(−π/2, ... ) — enumerate the ones the ansätze use.
        H => u3_affine(
            q,
            AffineAngle::constant(FRAC_PI_2),
            AffineAngle::constant(0.0),
            AffineAngle::constant(PI),
        ),
        Y => u3_affine(
            q,
            AffineAngle::constant(PI),
            AffineAngle::constant(FRAC_PI_2),
            AffineAngle::constant(FRAC_PI_2),
        ),
        // SXdg ≅ RX(−π/2) = U3(−π/2, −π/2, π/2).
        Sxdg => u3_affine(
            q,
            AffineAngle::constant(-FRAC_PI_2),
            AffineAngle::constant(-FRAC_PI_2),
            AffineAngle::constant(FRAC_PI_2),
        ),
        SqrtH => {
            // √H = U3 with θ = π/4 axis-tilted: numerically √H has ZYZ
            // angles (π/2·?, …). Use its exact ZYZ: computed from the
            // matrix (constant gate, so numeric extraction is safe).
            let (t, p, l) = crate::euler::zyz_angles(&Gate::sqrt_h(0).matrix1());
            u3_affine(
                q,
                AffineAngle::constant(t),
                AffineAngle::constant(p),
                AffineAngle::constant(l),
            )
        }
        // Two-qubit rewrites.
        Cz => {
            let mut v = lower_gate(&Gate::h(b), base);
            v.push(fixed(Gate::cx(a, b)));
            v.extend(lower_gate(&Gate::h(b), base));
            v
        }
        Cy => {
            let mut v = vec![rz(b, AffineAngle::constant(-FRAC_PI_2))];
            v.push(fixed(Gate::cx(a, b)));
            v.push(rz(b, AffineAngle::constant(FRAC_PI_2)));
            v
        }
        Swap => vec![
            fixed(Gate::cx(a, b)),
            fixed(Gate::cx(b, a)),
            fixed(Gate::cx(a, b)),
        ],
        Crz => vec![
            rz(b, scale_affine(&slot(0), 0.5)),
            fixed(Gate::cx(a, b)),
            rz(b, scale_affine(&slot(0), -0.5)),
            fixed(Gate::cx(a, b)),
        ],
        Cry => {
            let mut v = u3_affine(
                b,
                scale_affine(&slot(0), 0.5),
                AffineAngle::constant(0.0),
                AffineAngle::constant(0.0),
            );
            v.push(fixed(Gate::cx(a, b)));
            v.extend(u3_affine(
                b,
                scale_affine(&slot(0), -0.5),
                AffineAngle::constant(0.0),
                AffineAngle::constant(0.0),
            ));
            v.push(fixed(Gate::cx(a, b)));
            v
        }
        Crx => {
            let mut v = lower_gate(&Gate::h(b), base);
            v.push(rz(b, scale_affine(&slot(0), 0.5)));
            v.push(fixed(Gate::cx(a, b)));
            v.push(rz(b, scale_affine(&slot(0), -0.5)));
            v.push(fixed(Gate::cx(a, b)));
            v.extend(lower_gate(&Gate::h(b), base));
            v
        }
        Cp => vec![
            rz(a, scale_affine(&slot(0), 0.5)),
            rz(b, scale_affine(&slot(0), 0.5)),
            fixed(Gate::cx(a, b)),
            rz(b, scale_affine(&slot(0), -0.5)),
            fixed(Gate::cx(a, b)),
        ],
        Cu3 => {
            // cu3(θ,φ,λ) = RZ((λ+φ)/2) c; RZ((λ−φ)/2) t; CX;
            //              U3(−θ/2, 0, −(φ+λ)/2) t; CX; U3(θ/2, φ, 0) t.
            let (th, ph, la) = (slot(0), slot(1), slot(2));
            let half_sum = scale_affine(&add_affine(&la, &ph), 0.5);
            let half_diff = scale_affine(&add_affine(&la, &scale_affine(&ph, -1.0)), 0.5);
            let mut v = vec![rz(a, half_sum.clone()), rz(b, half_diff)];
            v.push(fixed(Gate::cx(a, b)));
            v.extend(u3_affine(
                b,
                scale_affine(&th, -0.5),
                AffineAngle::constant(0.0),
                scale_affine(&half_sum, -1.0),
            ));
            v.push(fixed(Gate::cx(a, b)));
            v.extend(u3_affine(
                b,
                scale_affine(&th, 0.5),
                ph,
                AffineAngle::constant(0.0),
            ));
            v
        }
        Rzz => vec![
            fixed(Gate::cx(a, b)),
            rz(b, slot(0)),
            fixed(Gate::cx(a, b)),
        ],
        Rxx => {
            let mut v = lower_gate(&Gate::h(a), base);
            v.extend(lower_gate(&Gate::h(b), base));
            v.push(fixed(Gate::cx(a, b)));
            v.push(rz(b, slot(0)));
            v.push(fixed(Gate::cx(a, b)));
            v.extend(lower_gate(&Gate::h(a), base));
            v.extend(lower_gate(&Gate::h(b), base));
            v
        }
        Rzx => {
            let mut v = lower_gate(&Gate::h(b), base);
            v.push(fixed(Gate::cx(a, b)));
            v.push(rz(b, slot(0)));
            v.push(fixed(Gate::cx(a, b)));
            v.extend(lower_gate(&Gate::h(b), base));
            v
        }
        SqrtSwap => {
            // As in the numeric pass: RXX(π/4) · (Sdg ⊗ Sdg) · RXX(π/4) ·
            // (S ⊗ S) · RZZ(π/4), all constant angles.
            let t4 = FRAC_PI_2 / 2.0;
            let mut v = rxx_const(a, b, t4);
            v.push(rz(a, AffineAngle::constant(-FRAC_PI_2)));
            v.push(rz(b, AffineAngle::constant(-FRAC_PI_2)));
            v.extend(rxx_const(a, b, t4));
            v.push(rz(a, AffineAngle::constant(FRAC_PI_2)));
            v.push(rz(b, AffineAngle::constant(FRAC_PI_2)));
            v.extend(rzz_const(a, b, t4));
            v
        }
    }
}

fn rxx_const(a: usize, b: usize, theta: f64) -> Vec<Emit> {
    let mut v = lower_gate(&Gate::h(a), 0);
    v.extend(lower_gate(&Gate::h(b), 0));
    v.push(fixed(Gate::cx(a, b)));
    v.push(rz(b, AffineAngle::constant(theta)));
    v.push(fixed(Gate::cx(a, b)));
    v.extend(lower_gate(&Gate::h(a), 0));
    v.extend(lower_gate(&Gate::h(b), 0));
    v
}

fn rzz_const(a: usize, b: usize, theta: f64) -> Vec<Emit> {
    vec![
        fixed(Gate::cx(a, b)),
        rz(b, AffineAngle::constant(theta)),
        fixed(Gate::cx(a, b)),
    ]
}

/// Lowers a circuit to the basis set with affine parameter tracking.
///
/// # Examples
///
/// ```
/// use qnat_compiler::symbolic::lower_symbolic;
/// use qnat_sim::{circuit::Circuit, gate::Gate};
///
/// let mut c = Circuit::new(2);
/// c.push(Gate::ry(0, 0.4));
/// c.push(Gate::cu3(0, 1, 0.2, 0.1, -0.3));
/// let sym = lower_symbolic(&c);
/// let bound = sym.bind(&[0.4, 0.2, 0.1, -0.3]);
/// assert!(bound.gates().iter().all(|g|
///     qnat_compiler::decompose::is_basis_gate(g.kind)));
/// ```
pub fn lower_symbolic(circuit: &Circuit) -> SymbolicLowered {
    let mut out = Circuit::new(circuit.n_qubits());
    let mut angles = Vec::new();
    let mut base = 0usize;
    for g in circuit.gates() {
        let emits = lower_gate(g, base);
        base += g.kind.param_count();
        for e in emits {
            debug_assert!(is_basis_gate(e.gate.kind), "lowering must emit basis gates");
            debug_assert_eq!(e.gate.kind.param_count(), e.angles.len());
            out.push(e.gate);
            angles.extend(e.angles);
        }
    }
    SymbolicLowered {
        circuit: out,
        angles,
        n_logical: circuit.n_params(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unitary::equiv_up_to_phase;
    use qnat_sim::adjoint::adjoint_all_z;

    fn check_equiv(reference: &Circuit) {
        let sym = lower_symbolic(reference);
        let bound = sym.bind(&reference.parameters());
        assert!(
            equiv_up_to_phase(reference, &bound, 1e-8),
            "symbolic lowering changed unitary:\nref:\n{reference}\nlow:\n{bound}"
        );
        assert!(bound.gates().iter().all(|g| is_basis_gate(g.kind)));
    }

    #[test]
    fn lowering_matches_original_unitary() {
        let mut c = Circuit::new(3);
        c.push(Gate::ry(0, 0.7));
        c.push(Gate::rx(1, -0.4));
        c.push(Gate::u3(2, 0.5, 0.2, -0.9));
        c.push(Gate::cu3(0, 1, 0.8, -0.1, 0.3));
        c.push(Gate::rzz(1, 2, 0.6));
        c.push(Gate::rxx(0, 2, -0.5));
        c.push(Gate::rzx(0, 1, 1.2));
        c.push(Gate::crx(2, 0, 0.35));
        c.push(Gate::cry(1, 0, -0.8));
        c.push(Gate::crz(0, 2, 0.45));
        c.push(Gate::cp(1, 2, 0.66));
        check_equiv(&c);
    }

    #[test]
    fn lowering_fixed_gates() {
        let mut c = Circuit::new(2);
        c.push(Gate::h(0));
        c.push(Gate::sqrt_h(1));
        c.push(Gate::y(0));
        c.push(Gate::s(1));
        c.push(Gate::t(0));
        c.push(Gate::cz(0, 1));
        c.push(Gate::swap(0, 1));
        c.push(Gate::sqrt_swap(0, 1));
        c.push(Gate::sxdg(0));
        check_equiv(&c);
    }

    #[test]
    fn rebinding_matches_fresh_lowering() {
        let mut c = Circuit::new(2);
        c.push(Gate::ry(0, 0.0));
        c.push(Gate::cu3(0, 1, 0.0, 0.0, 0.0));
        let sym = lower_symbolic(&c);
        let params = [0.9, -0.3, 0.5, 0.1];
        let bound = sym.bind(&params);
        let mut fresh = Circuit::new(2);
        fresh.push(Gate::ry(0, params[0]));
        fresh.push(Gate::cu3(0, 1, params[1], params[2], params[3]));
        assert!(equiv_up_to_phase(&fresh, &bound, 1e-8));
    }

    #[test]
    fn chained_gradients_match_logical_adjoint() {
        let mut c = Circuit::new(2);
        c.push(Gate::ry(0, 0.6));
        c.push(Gate::rx(1, -0.2));
        c.push(Gate::cu3(0, 1, 0.7, 0.3, -0.4));
        c.push(Gate::rzz(0, 1, 0.5));
        let logical = adjoint_all_z(&c);
        let sym = lower_symbolic(&c);
        let bound = sym.bind(&c.parameters());
        let compiled = adjoint_all_z(&bound);
        for obs in 0..2 {
            let chained = sym.chain_gradient(&compiled.gradients[obs]);
            for (j, (&got, &want)) in chained
                .iter()
                .zip(&logical.gradients[obs])
                .enumerate()
            {
                assert!(
                    (got - want).abs() < 1e-8,
                    "obs {obs} param {j}: chained {got} vs logical {want}"
                );
            }
            assert!(
                (compiled.expectations[obs] - logical.expectations[obs]).abs() < 1e-8,
                "expectation mismatch"
            );
        }
    }

    #[test]
    fn affine_angle_eval() {
        let a = AffineAngle {
            constant: 1.0,
            terms: vec![(0, 2.0), (2, -0.5)],
        };
        assert!((a.eval(&[3.0, 9.9, 4.0]) - (1.0 + 6.0 - 2.0)).abs() < 1e-12);
    }

    #[test]
    fn structure_is_value_independent() {
        let mut c = Circuit::new(1);
        c.push(Gate::ry(0, 0.0)); // θ = 0 must NOT shrink the template
        let sym = lower_symbolic(&c);
        let at_zero = sym.bind(&[0.0]);
        let at_pi = sym.bind(&[PI]);
        assert_eq!(at_zero.len(), at_pi.len());
        let mut reference = Circuit::new(1);
        reference.push(Gate::ry(0, PI));
        assert!(equiv_up_to_phase(&reference, &at_pi, 1e-8));
    }
}
