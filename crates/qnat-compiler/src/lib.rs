//! # qnat-compiler — transpiler substrate for QuantumNAT
//!
//! Compiles QNN circuits to the IBMQ hardware basis `{RZ, SX, X, CX}` the
//! way the paper requires before error-gate insertion and deployment:
//! Euler/McKay single-qubit lowering ([`euler`]), two-qubit rewriting
//! ([`decompose`]), SWAP routing over real coupling maps and noise-adaptive
//! layout ([`mapping`]), peephole cleanup ([`optimize`]) and the end-to-end
//! pipeline with Qiskit-style optimization levels 0–3 ([`mod@transpile`]).
//! The zero-noise-extrapolation workload adds [`folding`]: global and
//! per-gate `G → G·(G†·G)^k` folding to odd noise scales, unitary-identical
//! on the noise-free simulator.
//!
//! ## Example
//!
//! ```
//! use qnat_compiler::transpile::{transpile, TranspileOptions};
//! use qnat_noise::presets;
//! use qnat_sim::{circuit::Circuit, gate::Gate};
//!
//! let mut c = Circuit::new(2);
//! c.push(Gate::ry(0, 0.4));
//! c.push(Gate::cu3(0, 1, 0.3, 0.1, -0.2));
//! let t = transpile(&c, &presets::santiago(), TranspileOptions::default())?;
//! assert!(t.circuit.len() > 0);
//! # Ok::<(), qnat_noise::device::InvalidDeviceError>(())
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod calibration;
pub mod decompose;
pub mod euler;
pub mod folding;
pub mod fusion;
pub mod mapping;
pub mod optimize;
pub mod symbolic;
pub mod transpile;
pub mod unitary;

pub use calibration::{calibrated_view, quantize_estimate};
pub use folding::{fold_circuit, FoldError, FoldStrategy};
pub use fusion::fuse;
pub use transpile::{transpile, Transpiled, TranspileOptions};
