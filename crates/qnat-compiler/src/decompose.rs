//! Lowering of arbitrary gates to the IBMQ basis set `{RZ, SX, X, CX}`.
//!
//! The paper compiles every QNN to this basis *before* error-gate insertion
//! and training (§3.2), so injected Pauli errors land after the physical
//! pulses that actually occur on hardware.
//!
//! Two-qubit gates are rewritten to CX plus single-qubit gates with textbook
//! identities (controlled rotations by the two-CX conjugation trick, SWAP as
//! three CX, Ising couplers via CX·RZ·CX, √SWAP via commuting
//! `RXX·RYY·RZZ`), then every remaining single-qubit gate is lowered through
//! the ZYZ/McKay path in [`crate::euler`]. All rewrites hold up to global
//! phase, which is unobservable.

use crate::euler::mat2_to_basis;
use qnat_sim::circuit::Circuit;
use qnat_sim::gate::{Gate, GateKind};
use std::f64::consts::{FRAC_PI_2, PI};

/// `true` if `kind` is in the hardware basis set.
pub fn is_basis_gate(kind: GateKind) -> bool {
    matches!(
        kind,
        GateKind::Rz | GateKind::Sx | GateKind::X | GateKind::Cx | GateKind::Id
    )
}

/// Rewrites one two-qubit gate into CX and single-qubit gates (which may
/// themselves still need lowering). Returns `None` when the gate is already
/// CX or is single-qubit.
fn two_qubit_rewrite(g: &Gate) -> Option<Vec<Gate>> {
    let (a, b) = (g.qubits[0], g.qubits[1]);
    let th = g.params[0];
    use GateKind::*;
    let seq = match g.kind {
        Cx => return None,
        Cz => vec![Gate::h(b), Gate::cx(a, b), Gate::h(b)],
        Cy => vec![Gate::sdg(b), Gate::cx(a, b), Gate::s(b)],
        Swap => vec![Gate::cx(a, b), Gate::cx(b, a), Gate::cx(a, b)],
        Crz => vec![
            Gate::rz(b, th / 2.0),
            Gate::cx(a, b),
            Gate::rz(b, -th / 2.0),
            Gate::cx(a, b),
        ],
        Cry => vec![
            Gate::ry(b, th / 2.0),
            Gate::cx(a, b),
            Gate::ry(b, -th / 2.0),
            Gate::cx(a, b),
        ],
        Crx => vec![
            Gate::h(b),
            Gate::rz(b, th / 2.0),
            Gate::cx(a, b),
            Gate::rz(b, -th / 2.0),
            Gate::cx(a, b),
            Gate::h(b),
        ],
        Cp => vec![
            Gate::rz(a, th / 2.0),
            Gate::rz(b, th / 2.0),
            Gate::cx(a, b),
            Gate::rz(b, -th / 2.0),
            Gate::cx(a, b),
        ],
        Cu3 => {
            // Standard controlled-U decomposition (Nielsen & Chuang 4.2 /
            // Qiskit cu3), with P ≅ RZ up to global phase:
            //   P((λ+φ)/2) on c; P((λ−φ)/2) on t; CX;
            //   U3(−θ/2, 0, −(φ+λ)/2) on t; CX; U3(θ/2, φ, 0) on t.
            let (t3, phi, lam) = (g.params[0], g.params[1], g.params[2]);
            vec![
                Gate::rz(a, (lam + phi) / 2.0),
                Gate::rz(b, (lam - phi) / 2.0),
                Gate::cx(a, b),
                Gate::u3(b, -t3 / 2.0, 0.0, -(phi + lam) / 2.0),
                Gate::cx(a, b),
                Gate::u3(b, t3 / 2.0, phi, 0.0),
            ]
        }
        Rzz => vec![Gate::cx(a, b), Gate::rz(b, th), Gate::cx(a, b)],
        Rxx => vec![
            Gate::h(a),
            Gate::h(b),
            Gate::cx(a, b),
            Gate::rz(b, th),
            Gate::cx(a, b),
            Gate::h(a),
            Gate::h(b),
        ],
        Rzx => vec![
            Gate::h(b),
            Gate::cx(a, b),
            Gate::rz(b, th),
            Gate::cx(a, b),
            Gate::h(b),
        ],
        SqrtSwap => {
            // √SWAP ≅ RXX(π/2)·RYY(π/2)·RZZ(π/2) each at θ=π/2 halved:
            // SWAP ≅ RXX(π/2)·RYY(π/2)·RZZ(π/2), so √SWAP uses θ=π/4 each.
            // RYY(θ) = (Sdg⊗Sdg)·RXX(θ)·(S⊗S) in circuit order.
            let t4 = FRAC_PI_2 / 2.0;
            let mut v = vec![Gate::rxx(a, b, t4)];
            v.extend([Gate::sdg(a), Gate::sdg(b)]);
            v.push(Gate::rxx(a, b, t4));
            v.extend([Gate::s(a), Gate::s(b)]);
            v.push(Gate::rzz(a, b, t4));
            v
        }
        _ => return None,
    };
    Some(seq)
}

/// Lowers a whole circuit to the basis set `{RZ, SX, X, CX}`.
///
/// The output implements the same unitary up to global phase; RZ gates are
/// virtual (error-free) on hardware.
///
/// # Examples
///
/// ```
/// use qnat_compiler::decompose::{decompose_to_basis, is_basis_gate};
/// use qnat_sim::{circuit::Circuit, gate::Gate};
///
/// let mut c = Circuit::new(2);
/// c.push(Gate::cu3(0, 1, 0.4, 0.1, -0.2));
/// let lowered = decompose_to_basis(&c);
/// assert!(lowered.gates().iter().all(|g| is_basis_gate(g.kind)));
/// ```
pub fn decompose_to_basis(circuit: &Circuit) -> Circuit {
    let mut out = Circuit::new(circuit.n_qubits());
    let mut work: Vec<Gate> = circuit.gates().to_vec();
    // Two-qubit rewrites may produce new two-qubit helper gates (RXX/RZZ in
    // the √SWAP path), so iterate to a fixpoint before 1q lowering.
    loop {
        let mut changed = false;
        let mut next = Vec::with_capacity(work.len());
        for g in &work {
            if g.arity() == 2 {
                if let Some(seq) = two_qubit_rewrite(g) {
                    next.extend(seq);
                    changed = true;
                } else {
                    next.push(*g);
                }
            } else {
                next.push(*g);
            }
        }
        work = next;
        if !changed {
            break;
        }
    }
    for g in &work {
        let q = g.qubits[0];
        match g.kind {
            GateKind::Id => {}
            _ if g.arity() == 2 => out.push(*g), // only CX survives rewriting
            _ if is_basis_gate(g.kind) => out.push(*g),
            // Diagonal gates stay virtual RZ (≅ up to global phase).
            GateKind::P => {
                let lam = crate::euler::normalize_angle(g.params[0]);
                if lam.abs() > 1e-12 {
                    out.push(Gate::rz(q, lam));
                }
            }
            GateKind::Z => out.push(Gate::rz(q, PI)),
            GateKind::S => out.push(Gate::rz(q, FRAC_PI_2)),
            GateKind::Sdg => out.push(Gate::rz(q, -FRAC_PI_2)),
            GateKind::T => out.push(Gate::rz(q, PI / 4.0)),
            GateKind::Tdg => out.push(Gate::rz(q, -PI / 4.0)),
            _ => out.extend(mat2_to_basis(q, &g.matrix1())),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unitary::equiv_up_to_phase;

    fn assert_lowering(mut make: impl FnMut(&mut Circuit)) {
        let mut reference = Circuit::new(3);
        make(&mut reference);
        let lowered = decompose_to_basis(&reference);
        assert!(
            lowered.gates().iter().all(|g| is_basis_gate(g.kind)),
            "non-basis gate survived: {lowered}"
        );
        assert!(
            equiv_up_to_phase(&reference, &lowered, 1e-8),
            "lowering changed the unitary:\nref:\n{reference}\nlow:\n{lowered}"
        );
    }

    #[test]
    fn lowers_two_qubit_cliffords() {
        assert_lowering(|c| c.push(Gate::cz(0, 1)));
        assert_lowering(|c| c.push(Gate::cy(1, 2)));
        assert_lowering(|c| c.push(Gate::swap(0, 2)));
    }

    #[test]
    fn lowers_controlled_rotations() {
        assert_lowering(|c| c.push(Gate::crz(0, 1, 0.7)));
        assert_lowering(|c| c.push(Gate::cry(0, 1, -1.3)));
        assert_lowering(|c| c.push(Gate::crx(2, 0, 2.1)));
        assert_lowering(|c| c.push(Gate::cp(1, 2, 0.9)));
    }

    #[test]
    fn lowers_cu3() {
        assert_lowering(|c| c.push(Gate::cu3(0, 1, 0.8, 0.3, -0.5)));
        assert_lowering(|c| c.push(Gate::cu3(2, 1, PI / 2.0, 0.0, PI)));
    }

    #[test]
    fn lowers_ising_couplers() {
        assert_lowering(|c| c.push(Gate::rzz(0, 1, 0.6)));
        assert_lowering(|c| c.push(Gate::rxx(1, 2, -0.9)));
        assert_lowering(|c| c.push(Gate::rzx(0, 2, 1.4)));
    }

    #[test]
    fn lowers_sqrt_swap() {
        assert_lowering(|c| c.push(Gate::sqrt_swap(0, 1)));
    }

    #[test]
    fn lowers_design_space_block() {
        // A representative slice of the RXYZ+U1+CU3 design space.
        assert_lowering(|c| {
            c.push(Gate::rx(0, 0.3));
            c.push(Gate::s(1));
            c.push(Gate::cx(0, 1));
            c.push(Gate::ry(2, -0.8));
            c.push(Gate::t(0));
            c.push(Gate::swap(1, 2));
            c.push(Gate::rz(0, 0.5));
            c.push(Gate::h(1));
            c.push(Gate::sqrt_swap(0, 1));
            c.push(Gate::p(2, 0.25));
            c.push(Gate::cu3(2, 0, 0.6, 0.2, -0.3));
        });
    }

    #[test]
    fn virtual_gates_stay_virtual() {
        let mut c = Circuit::new(1);
        c.push(Gate::s(0));
        c.push(Gate::t(0));
        c.push(Gate::z(0));
        let lowered = decompose_to_basis(&c);
        assert!(lowered
            .gates()
            .iter()
            .all(|g| g.kind == GateKind::Rz));
    }

    #[test]
    fn identity_gates_dropped() {
        let mut c = Circuit::new(1);
        c.push(Gate::id(0));
        let lowered = decompose_to_basis(&c);
        assert!(lowered.is_empty());
    }
}
