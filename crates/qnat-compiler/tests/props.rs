//! Property-based tests for the transpiler: every pass preserves the
//! circuit unitary (up to global phase), at every optimization level, and
//! the symbolic lowering agrees for random parameter bindings.

use proptest::prelude::*;
use qnat_compiler::decompose::{decompose_to_basis, is_basis_gate};
use qnat_compiler::optimize::optimize;
use qnat_compiler::symbolic::lower_symbolic;
use qnat_compiler::transpile::{transpile, TranspileOptions};
use qnat_compiler::unitary::equiv_up_to_phase;
use qnat_noise::presets;
use qnat_sim::circuit::Circuit;
use qnat_sim::gate::Gate;
use qnat_sim::statevector::simulate;

const N_QUBITS: usize = 4;

fn arb_gate() -> impl Strategy<Value = Gate> {
    let q = 0..N_QUBITS;
    let angle = -3.0f64..3.0;
    prop_oneof![
        q.clone().prop_map(Gate::h),
        q.clone().prop_map(Gate::t),
        q.clone().prop_map(Gate::sx),
        q.clone().prop_map(Gate::sqrt_h),
        (q.clone(), angle.clone()).prop_map(|(q, a)| Gate::ry(q, a)),
        (q.clone(), angle.clone()).prop_map(|(q, a)| Gate::rz(q, a)),
        (q.clone(), angle.clone(), angle.clone(), angle.clone())
            .prop_map(|(q, a, b, c)| Gate::u3(q, a, b, c)),
        (0..N_QUBITS, 1..N_QUBITS).prop_map(|(a, d)| Gate::cx(a, (a + d) % N_QUBITS)),
        (0..N_QUBITS, 1..N_QUBITS).prop_map(|(a, d)| Gate::cz(a, (a + d) % N_QUBITS)),
        (0..N_QUBITS, 1..N_QUBITS).prop_map(|(a, d)| Gate::swap(a, (a + d) % N_QUBITS)),
        (0..N_QUBITS, 1..N_QUBITS, angle.clone())
            .prop_map(|(a, d, t)| Gate::cry(a, (a + d) % N_QUBITS, t)),
        (0..N_QUBITS, 1..N_QUBITS, angle.clone(), angle.clone(), angle)
            .prop_map(|(a, d, t, p, l)| Gate::cu3(a, (a + d) % N_QUBITS, t, p, l)),
    ]
}

fn arb_circuit(max_gates: usize) -> impl Strategy<Value = Circuit> {
    prop::collection::vec(arb_gate(), 1..max_gates).prop_map(|gates| {
        let mut c = Circuit::new(N_QUBITS);
        c.extend(gates);
        c
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn decomposition_preserves_unitary(circuit in arb_circuit(12)) {
        let lowered = decompose_to_basis(&circuit);
        prop_assert!(lowered.gates().iter().all(|g| is_basis_gate(g.kind)));
        prop_assert!(equiv_up_to_phase(&circuit, &lowered, 1e-7));
    }

    #[test]
    fn optimization_preserves_unitary(circuit in arb_circuit(12)) {
        let mut lowered = decompose_to_basis(&circuit);
        let reference = lowered.clone();
        optimize(&mut lowered);
        prop_assert!(lowered.len() <= reference.len());
        prop_assert!(equiv_up_to_phase(&reference, &lowered, 1e-7));
    }

    #[test]
    fn transpiled_expectations_match_logical(circuit in arb_circuit(10), level in 0u8..4) {
        let model = presets::santiago();
        let t = transpile(&circuit, &model, TranspileOptions::level(level)).unwrap();
        // Every 2q gate must respect the coupling map.
        for g in t.circuit.gates().iter().filter(|g| g.arity() == 2) {
            prop_assert!(t.device_view.are_coupled(g.qubits[0], g.qubits[1]));
        }
        let ideal = simulate(&circuit);
        let mut psi = qnat_sim::StateVector::zero_state(t.circuit.n_qubits());
        psi.run(&t.circuit);
        let window_z = psi.expect_all_z();
        for q in 0..N_QUBITS {
            let got = window_z[t.layout[q]];
            prop_assert!(
                (got - ideal.expect_z(q)).abs() < 1e-6,
                "level {} qubit {}: {} vs {}", level, q, got, ideal.expect_z(q)
            );
        }
    }

    #[test]
    fn symbolic_lowering_matches_for_random_bindings(
        circuit in arb_circuit(8),
        scale in -1.5f64..1.5,
    ) {
        let sym = lower_symbolic(&circuit);
        let params: Vec<f64> = circuit.parameters().iter().map(|p| p * scale).collect();
        let mut rebound = circuit.clone();
        rebound.set_parameters(&params);
        let bound = sym.bind(&params);
        prop_assert!(equiv_up_to_phase(&rebound, &bound, 1e-7));
    }

    #[test]
    fn symbolic_template_size_is_binding_independent(circuit in arb_circuit(8)) {
        let sym = lower_symbolic(&circuit);
        let zeros = vec![0.0; circuit.n_params()];
        let ones = vec![1.0; circuit.n_params()];
        prop_assert_eq!(sym.bind(&zeros).len(), sym.bind(&ones).len());
    }
}
