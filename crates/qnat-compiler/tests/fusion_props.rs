//! Property tests: gate fusion is semantics-preserving.
//!
//! Random circuits over the *entire* gate library (`GateKind::ALL`) must
//! produce the same outputs fused and unfused, within 1e-12, on
//!
//! * the statevector path (amplitude-by-amplitude — stricter than any
//!   observable comparison), and
//! * the density-matrix path, which reuses the statevector kernels through
//!   the `vec(ρ)` bra/ket isomorphism (ket op on bit `q+n`, conjugated bra
//!   op on bit `q`) and so exercises `run_fused`'s `conj2`/`conj4` reuse.

use proptest::prelude::*;
use qnat_compiler::fusion::{fuse, FusionPlan};
use qnat_sim::circuit::Circuit;
use qnat_sim::density::DensityMatrix;
use qnat_sim::fused::simulate_fused;
use qnat_sim::gate::{Gate, GateKind};
use qnat_sim::statevector::simulate;

const N_QUBITS: usize = 3;

/// A random gate of a random kind from `GateKind::ALL`, with random
/// in-range qubits (distinct for two-qubit kinds) and random angles in the
/// parameter slots the kind actually reads.
fn arb_gate() -> impl Strategy<Value = Gate> {
    (
        0..GateKind::ALL.len(),
        0..N_QUBITS,
        1..N_QUBITS,
        (-3.0f64..3.0, -3.0f64..3.0, -3.0f64..3.0),
    )
        .prop_map(|(k, qa, d, (p0, p1, p2))| {
            let kind = GateKind::ALL[k];
            let qb = (qa + d) % N_QUBITS;
            Gate {
                kind,
                qubits: [qa, qb],
                params: [p0, p1, p2],
            }
        })
}

fn arb_circuit(max_gates: usize) -> impl Strategy<Value = Circuit> {
    prop::collection::vec(arb_gate(), 0..max_gates).prop_map(|gates| {
        let mut c = Circuit::new(N_QUBITS);
        c.extend(gates);
        c
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fused_statevector_matches_unfused(circuit in arb_circuit(24)) {
        let fused = fuse(&circuit);
        // Fusion never grows the op count.
        prop_assert!(fused.len() <= circuit.len().max(1));
        let psi = simulate(&circuit);
        let phi = simulate_fused(&fused);
        for (i, (a, b)) in psi.amplitudes().iter().zip(phi.amplitudes()).enumerate() {
            prop_assert!(
                a.approx_eq(*b, 1e-12),
                "amp {i}: {a} unfused vs {b} fused in\n{circuit}"
            );
        }
    }

    #[test]
    fn fused_density_matrix_matches_unfused(circuit in arb_circuit(16)) {
        let fused = fuse(&circuit);
        let mut rho_u = DensityMatrix::zero_state(N_QUBITS);
        rho_u.run(&circuit);
        let mut rho_f = DensityMatrix::zero_state(N_QUBITS);
        rho_f.run_fused(&fused);
        let dim = 1usize << N_QUBITS;
        for r in 0..dim {
            for c in 0..dim {
                let a = rho_u.element(r, c);
                let b = rho_f.element(r, c);
                prop_assert!(
                    a.approx_eq(b, 1e-12),
                    "rho[{r}][{c}]: {a} unfused vs {b} fused in\n{circuit}"
                );
            }
        }
    }

    #[test]
    fn fusion_is_deterministic(circuit in arb_circuit(16)) {
        // Same input → identical FusedCircuit, bit for bit. The plan
        // cache depends on this: a cache hit may not change results.
        prop_assert_eq!(fuse(&circuit), fuse(&circuit));
    }

    #[test]
    fn template_plan_fuses_any_rebinding_bitwise(
        circuit in arb_circuit(20),
        shift in -2.0f64..2.0,
    ) {
        // A plan built from one parameter binding fuses *any other*
        // binding of the same structure bitwise identically to a fresh
        // fuse of that binding — the cached-plan serving contract.
        let plan = FusionPlan::for_template(&circuit);
        let mut rebound = circuit.clone();
        let params: Vec<f64> =
            rebound.parameters().iter().map(|p| p + shift).collect();
        rebound.set_parameters(&params);
        prop_assert_eq!(plan.fuse_bound(&rebound), fuse(&rebound));
        prop_assert!(plan.n_ops() <= plan.n_gates().max(1));
    }
}
