//! Property tests: gate folding is a unitary identity (ISSUE 10).
//!
//! Folding to scale 2k+1 replaces `G` with `G·(G†·G)^k` — on the
//! noise-free statevector simulator the folded circuit must produce the
//! **same state** as the unfolded one, amplitude by amplitude, for every
//! odd scale and both strategies, over random circuits drawn from the
//! *entire* gate library (`GateKind::ALL` — including `SqrtH`/`SqrtSwap`,
//! whose inverses are the commuting two-gate `[base, g]` pair). The
//! noise amplification ZNE relies on exists only because real backends
//! attach error to every *extra* gate; the logical circuit is untouched.

use proptest::prelude::*;
use qnat_compiler::folding::{fold_circuit, FoldStrategy};
use qnat_sim::circuit::Circuit;
use qnat_sim::gate::{Gate, GateKind};
use qnat_sim::statevector::simulate;

const N_QUBITS: usize = 3;

/// A random gate of a random kind from `GateKind::ALL`, with random
/// in-range qubits (distinct for two-qubit kinds) and random angles in
/// the parameter slots the kind actually reads.
fn arb_gate() -> impl Strategy<Value = Gate> {
    (
        0..GateKind::ALL.len(),
        0..N_QUBITS,
        1..N_QUBITS,
        (-3.0f64..3.0, -3.0f64..3.0, -3.0f64..3.0),
    )
        .prop_map(|(k, qa, d, (p0, p1, p2))| {
            let kind = GateKind::ALL[k];
            let qb = (qa + d) % N_QUBITS;
            Gate {
                kind,
                qubits: [qa, qb],
                params: [p0, p1, p2],
            }
        })
}

fn arb_circuit(max_gates: usize) -> impl Strategy<Value = Circuit> {
    prop::collection::vec(arb_gate(), 0..max_gates).prop_map(|gates| {
        let mut c = Circuit::new(N_QUBITS);
        c.extend(gates);
        c
    })
}

fn arb_strategy() -> impl Strategy<Value = FoldStrategy> {
    prop_oneof![Just(FoldStrategy::Global), Just(FoldStrategy::PerGate)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn folded_statevector_matches_unfolded(
        circuit in arb_circuit(16),
        scale in prop_oneof![Just(3usize), Just(5)],
        strategy in arb_strategy(),
    ) {
        let folded = fold_circuit(&circuit, scale, strategy).expect("odd scale");
        // The construction inserts at least (scale-1) inverse/forward
        // copies of every gate; roots cost one extra gate per inverse.
        prop_assert!(folded.len() >= circuit.len() * scale);
        let psi = simulate(&circuit);
        let phi = simulate(&folded);
        for (i, (a, b)) in psi.amplitudes().iter().zip(phi.amplitudes()).enumerate() {
            prop_assert!(
                a.approx_eq(*b, 1e-12),
                "amp {i}: {a} unfolded vs {b} folded at {scale}x ({strategy:?}) in\n{circuit}"
            );
        }
    }

    #[test]
    fn scale_one_is_the_identity_fold(
        circuit in arb_circuit(16),
        strategy in arb_strategy(),
    ) {
        let folded = fold_circuit(&circuit, 1, strategy).expect("scale 1");
        prop_assert_eq!(folded.gates(), circuit.gates());
    }

    #[test]
    fn folding_is_deterministic(
        circuit in arb_circuit(12),
        strategy in arb_strategy(),
    ) {
        // Same input → identical folded circuit, bit for bit: the sweep
        // replay contract starts with the fold.
        let a = fold_circuit(&circuit, 3, strategy).expect("odd scale");
        let b = fold_circuit(&circuit, 3, strategy).expect("odd scale");
        prop_assert_eq!(a.gates(), b.gates());
    }
}
