//! # qnat-serve — long-lived serving layer over the QuantumNAT batch pool
//!
//! The deployment story of QuantumNAT (Wang et al., DAC 2022) assumes
//! inference requests arrive *continuously* against drifting,
//! failure-prone devices, but
//! [`qnat_core::batch::BatchExecutor`] blocks the caller until an entire
//! batch drains. This crate adds the missing serving layer:
//!
//! * [`engine::ServeEngine`] — a bounded multi-producer job queue
//!   (`submit → Ticket`) over a persistent worker pool, with non-blocking
//!   `poll`, blocking `wait`, and a `subscribe` result stream in
//!   completion order. Circuit-breaker admission control at enqueue time,
//!   per-lane backpressure (`Block | RejectWhenFull | ShedOldest`) and
//!   priority lanes (interactive before bulk).
//! * [`qnn::ServingQnn`] — a QNN deployed onto per-block engines, plugged
//!   into [`qnat_core::infer::infer`] through the
//!   [`InferenceBackend::Serving`](qnat_core::infer::InferenceBackend)
//!   variant. The first served workload is **bitwise identical** to the
//!   same deployment run through [`Qnn::deploy_batch`] — per-job seeds
//!   derive from tickets exactly as the batch layer derives them from job
//!   indices.
//! * [`bulk::bulk_grid_sweep`] — the §4.2 hyper-parameter grid of
//!   [`qnat_core::sweep::SweepConfig`], served through the bulk lane so
//!   background sweeps never starve interactive traffic.
//! * [`mitigate::submit_mitigated`] — error-mitigation sweeps: one
//!   logical [`mitigate::MitigatedJob`] fans out into one folded run per
//!   noise scale on the bulk lane (seeds pinned to the repo-wide
//!   splitmix64 schedule, so sweeps replay bitwise) and aggregates the
//!   runs — readout inversion, then zero-noise extrapolation — into a
//!   single mitigated result.
//!
//! [`Qnn::deploy_batch`]: qnat_core::model::Qnn

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod bulk;
pub mod engine;
pub mod mitigate;
pub mod qnn;

pub use bulk::{bulk_grid_sweep, BulkSweepRecord};
pub use engine::{
    AdmissionControl, BackpressurePolicy, EngineLoad, EngineStats, JobOutcome, Lane, LaneConfig,
    OpenAction, Poll, ServeConfig, ServeEngine, SubmitError, Ticket, WaitError,
};
pub use mitigate::{
    aggregate_sweep, sub_seed, submit_mitigated, MitigatedJob, MitigatedOutcome,
    MitigatedSubmitError, MitigatedSweep, MitigationError, ScaleRun,
};
pub use qnn::{DeployServing, ServeAdmission, ServingOptions, ServingQnn};
