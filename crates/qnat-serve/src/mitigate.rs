//! Error-mitigation sweeps: one logical job, k correlated folded runs.
//!
//! A [`MitigatedJob`] is a genuinely new traffic shape for the serving
//! engine: instead of one circuit → one simulation, one request fans out
//! into one folded simulation **per noise scale** (1×/3×/5×, …) on the
//! bulk lane, and the k results are aggregated — readout-confusion
//! inversion per run, then zero-noise extrapolation per qubit — into a
//! single mitigated [`Measurements`] the caller (or the wire) sees as
//! one result.
//!
//! ## Replay discipline
//!
//! The whole sweep replays bitwise from its `sweep_seed`. Sub-job `k`
//! (the k-th scale, in the order given) is pinned through
//! [`ServeEngine::submit_routed`] with
//!
//! ```text
//! global = k,   seed = splitmix64(sweep_seed ^ splitmix64(k))
//! ```
//!
//! — the exact per-job seed schedule every other layer of this repo uses
//! (`BatchExecutor::job_seed`, `ServeEngine::job_seed`, the fleet
//! router), so a sweep re-submitted with the same `sweep_seed` runs
//! bit-for-bit identically regardless of which engine, ticket numbers or
//! worker interleavings serve it. Pinned by `tests/mitigate_replay.rs`.
//!
//! ## Aggregation order
//!
//! Readout inversion runs **per scale, before extrapolation**: gate
//! folding amplifies *gate* noise but leaves readout error at 1× (the
//! measurement still happens once), so readout must be unfolded from
//! each scale's expectations first or the extrapolation would treat the
//! constant readout bias as gate noise and mis-extrapolate it. After
//! inversion the per-qubit expectations are extrapolated to scale 0 and
//! clamped to the physical `[-1, 1]` (the 1-qubit simplex projection;
//! see `qnat_core::mitigate` for the bias this introduces).

use crate::engine::{JobOutcome, Lane, ServeEngine, SubmitError, Ticket, WaitError};
use qnat_compiler::folding::{fold_circuit, FoldError, FoldStrategy};
use qnat_core::batch::BatchJob;
use qnat_core::executor::{splitmix64, ExecutionReport};
use qnat_core::mitigate::{
    extrapolate_expectation, unconfuse_expectations, MitigateError, ZneMethod,
};
use qnat_noise::backend::{BackendError, Measurements};
use qnat_sim::circuit::Circuit;
use qnat_sim::measure::Confusion;
use std::error::Error;
use std::fmt;

/// One logical mitigated job: a circuit to run at several folded noise
/// scales, with the post-processing recipe for collapsing the sweep
/// into a single zero-noise estimate.
#[derive(Debug, Clone)]
pub struct MitigatedJob {
    /// The unfolded circuit.
    pub circuit: Circuit,
    /// Per-sub-run shot budget (`None` = exact expectations).
    pub shots: Option<usize>,
    /// Odd noise scales to run, e.g. `[1, 3, 5]`. At least two distinct
    /// scales are required — extrapolation through one point is not a
    /// fit.
    pub scales: Vec<usize>,
    /// Where the folding pass inserts the identity pairs.
    pub strategy: FoldStrategy,
    /// How the per-scale expectations extrapolate to scale 0.
    pub method: ZneMethod,
    /// Per-qubit readout confusion matrices to invert out of each
    /// sub-run before extrapolation (`None` = skip readout inversion).
    /// Length must equal the circuit's qubit count.
    pub readout: Option<Vec<Confusion>>,
}

impl MitigatedJob {
    /// A ZNE-only job at scales 1/3/5 with per-gate folding and linear
    /// extrapolation — the default sweep shape of the acceptance bench.
    pub fn zne(circuit: Circuit, shots: Option<usize>) -> Self {
        MitigatedJob {
            circuit,
            shots,
            scales: vec![1, 3, 5],
            strategy: FoldStrategy::PerGate,
            method: ZneMethod::Linear,
            readout: None,
        }
    }

    /// Adds per-qubit readout inversion to the recipe.
    pub fn with_readout(mut self, confusions: Vec<Confusion>) -> Self {
        self.readout = Some(confusions);
        self
    }
}

/// A mitigated submission the engine refused before any aggregation.
#[derive(Debug, Clone, PartialEq)]
pub enum MitigatedSubmitError {
    /// Fewer than two scales: nothing to extrapolate through.
    TooFewScales {
        /// How many scales arrived.
        got: usize,
    },
    /// A scale repeats; coincident x-values make every fit degenerate.
    DuplicateScale {
        /// The repeated scale.
        scale: usize,
    },
    /// A scale the folding construction cannot reach (even or zero).
    Fold(FoldError),
    /// `readout` is present but its length differs from the circuit's
    /// qubit count.
    ReadoutShape {
        /// The circuit's qubit count.
        expected: usize,
        /// Confusion matrices provided.
        got: usize,
    },
    /// The engine refused a sub-job (queue full / shed / stopping).
    /// Sub-jobs already accepted before the refusal still run to
    /// completion and are dropped — the sweep is all-or-nothing from the
    /// caller's perspective.
    Submit(SubmitError),
}

impl fmt::Display for MitigatedSubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MitigatedSubmitError::TooFewScales { got } => {
                write!(f, "need at least two noise scales to extrapolate, got {got}")
            }
            MitigatedSubmitError::DuplicateScale { scale } => {
                write!(f, "noise scale {scale} appears more than once")
            }
            MitigatedSubmitError::Fold(e) => write!(f, "{e}"),
            MitigatedSubmitError::ReadoutShape { expected, got } => write!(
                f,
                "readout confusion count {got} does not match the circuit's {expected} qubits"
            ),
            MitigatedSubmitError::Submit(e) => write!(f, "sub-job refused: {e}"),
        }
    }
}

impl Error for MitigatedSubmitError {}

impl From<FoldError> for MitigatedSubmitError {
    fn from(e: FoldError) -> Self {
        MitigatedSubmitError::Fold(e)
    }
}

impl From<SubmitError> for MitigatedSubmitError {
    fn from(e: SubmitError) -> Self {
        MitigatedSubmitError::Submit(e)
    }
}

/// Why a completed sweep failed to produce a mitigated result.
#[derive(Debug, Clone, PartialEq)]
pub enum MitigationError {
    /// A sub-run at `scale` failed in the backend; the sweep cannot be
    /// aggregated without it.
    SubRun {
        /// The noise scale whose run failed.
        scale: usize,
        /// The backend's typed failure.
        error: BackendError,
    },
    /// The mitigation math rejected the aggregate (degenerate fit,
    /// singular confusion, ragged shapes).
    Math(MitigateError),
}

impl fmt::Display for MitigationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MitigationError::SubRun { scale, error } => {
                write!(f, "sub-run at noise scale {scale} failed: {error}")
            }
            MitigationError::Math(e) => write!(f, "mitigation math failed: {e}"),
        }
    }
}

impl Error for MitigationError {}

impl From<MitigateError> for MitigationError {
    fn from(e: MitigateError) -> Self {
        MitigationError::Math(e)
    }
}

/// The per-job executor seed of sub-job `k` in a sweep seeded with
/// `sweep_seed` — the repo-wide `splitmix64(seed ^ splitmix64(job))`
/// schedule, re-exported so tests and the wire can pin it.
pub fn sub_seed(sweep_seed: u64, k: u64) -> u64 {
    splitmix64(sweep_seed ^ splitmix64(k))
}

/// An in-flight mitigated sweep: the fan-out's tickets plus everything
/// needed to aggregate them.
#[derive(Debug, Clone)]
pub struct MitigatedSweep {
    /// One engine ticket per scale, in `scales` order.
    pub tickets: Vec<Ticket>,
    /// The scales, mirroring `tickets`.
    pub scales: Vec<usize>,
    /// The sweep's replay seed.
    pub sweep_seed: u64,
    method: ZneMethod,
    readout: Option<Vec<Confusion>>,
}

/// One sub-run's full outcome, kept for observability next to the
/// aggregate.
#[derive(Debug, Clone)]
pub struct ScaleRun {
    /// The noise scale this run was folded to.
    pub scale: usize,
    /// The engine ticket that served it.
    pub ticket: Ticket,
    /// The sub-run's raw (unmitigated) outcome.
    pub outcome: JobOutcome,
}

/// A completed sweep: the single aggregated result plus the per-scale
/// raw outcomes it was built from.
#[derive(Debug, Clone)]
pub struct MitigatedOutcome {
    /// The zero-noise estimate (per-qubit expectations clamped to
    /// `[-1, 1]`; `shots_used` totalled over the sub-runs), or the typed
    /// reason the sweep could not be aggregated.
    pub mitigated: Result<Measurements, MitigationError>,
    /// The unmitigated expectations at the **smallest** submitted scale
    /// (the raw baseline a caller compares against), when that run
    /// succeeded.
    pub raw: Option<Vec<f64>>,
    /// Every sub-run, in `scales` order.
    pub runs: Vec<ScaleRun>,
    /// The sub-run execution reports merged in scale order.
    pub report: ExecutionReport,
}

/// Validates and fans a [`MitigatedJob`] out: one folded circuit per
/// scale, each submitted to the **bulk lane** via
/// [`ServeEngine::submit_routed`] with the sweep's pinned
/// `(global, seed)` schedule (see the module docs).
///
/// # Errors
///
/// Typed [`MitigatedSubmitError`] on an invalid sweep shape or an engine
/// refusal; validation (including every fold) completes before the first
/// submission, so shape errors never leave orphan sub-jobs.
pub fn submit_mitigated(
    engine: &ServeEngine,
    job: &MitigatedJob,
    sweep_seed: u64,
) -> Result<MitigatedSweep, MitigatedSubmitError> {
    if job.scales.len() < 2 {
        return Err(MitigatedSubmitError::TooFewScales {
            got: job.scales.len(),
        });
    }
    for (i, &s) in job.scales.iter().enumerate() {
        if job.scales[..i].contains(&s) {
            return Err(MitigatedSubmitError::DuplicateScale { scale: s });
        }
    }
    if let Some(r) = &job.readout {
        if r.len() != job.circuit.n_qubits() {
            return Err(MitigatedSubmitError::ReadoutShape {
                expected: job.circuit.n_qubits(),
                got: r.len(),
            });
        }
    }
    // Fold everything before submitting anything: an invalid scale must
    // not leave earlier sub-jobs running.
    let folded: Vec<Circuit> = job
        .scales
        .iter()
        .map(|&s| fold_circuit(&job.circuit, s, job.strategy))
        .collect::<Result<_, _>>()?;
    let mut tickets = Vec::with_capacity(folded.len());
    for (k, circuit) in folded.into_iter().enumerate() {
        let sub = BatchJob {
            circuit,
            shots: job.shots,
        };
        let ticket = engine.submit_routed(sub, Lane::Bulk, k as u64, sub_seed(sweep_seed, k as u64))?;
        tickets.push(ticket);
    }
    Ok(MitigatedSweep {
        tickets,
        scales: job.scales.clone(),
        sweep_seed,
        method: job.method,
        readout: job.readout.clone(),
    })
}

/// Pure aggregation of a completed sweep's per-scale outcomes (exposed
/// for tests and the bench): readout inversion per scale, then
/// per-qubit extrapolation to zero noise, clamped to `[-1, 1]`.
///
/// # Errors
///
/// [`MitigationError::SubRun`] on the first failed sub-run (in scale
/// order), [`MitigationError::Math`] when the mitigation math rejects
/// the aggregate.
pub fn aggregate_sweep(
    scales: &[usize],
    results: &[Result<Measurements, BackendError>],
    readout: Option<&[Confusion]>,
    method: ZneMethod,
) -> Result<Measurements, MitigationError> {
    debug_assert_eq!(scales.len(), results.len());
    let mut per_scale: Vec<Vec<f64>> = Vec::with_capacity(results.len());
    let mut shots_total: Option<usize> = Some(0);
    for (&scale, result) in scales.iter().zip(results) {
        let m = result.as_ref().map_err(|e| MitigationError::SubRun {
            scale,
            error: e.clone(),
        })?;
        let zs = match readout {
            Some(confusions) => unconfuse_expectations(&m.expectations, confusions)?,
            None => m.expectations.clone(),
        };
        per_scale.push(zs);
        shots_total = match (shots_total, m.shots_used) {
            (Some(acc), Some(s)) => Some(acc + s),
            _ => None,
        };
    }
    let xs: Vec<f64> = scales.iter().map(|&s| s as f64).collect();
    let n_q = per_scale.first().map_or(0, Vec::len);
    let mut expectations = Vec::with_capacity(n_q);
    for q in 0..n_q {
        let ys: Vec<f64> = per_scale.iter().map(|row| row[q]).collect();
        let z = extrapolate_expectation(&xs, &ys, method)?;
        expectations.push(z.clamp(-1.0, 1.0));
    }
    Ok(Measurements {
        expectations,
        shots_used: shots_total,
    })
}

impl MitigatedSweep {
    /// Index of the smallest scale — the sweep's raw baseline.
    fn baseline_index(&self) -> Option<usize> {
        self.scales
            .iter()
            .enumerate()
            .min_by_key(|&(_, &s)| s)
            .map(|(i, _)| i)
    }

    /// Aggregates already-collected sub-run outcomes into the final
    /// [`MitigatedOutcome`].
    fn finish(&self, outcomes: Vec<JobOutcome>) -> MitigatedOutcome {
        let results: Vec<Result<Measurements, BackendError>> =
            outcomes.iter().map(|o| o.result.clone()).collect();
        let mitigated =
            aggregate_sweep(&self.scales, &results, self.readout.as_deref(), self.method);
        let raw = self.baseline_index().and_then(|i| {
            results[i]
                .as_ref()
                .ok()
                .map(|m| m.expectations.clone())
        });
        let mut report = ExecutionReport::default();
        for o in &outcomes {
            report.merge(&o.report);
        }
        let runs = self
            .scales
            .iter()
            .zip(&self.tickets)
            .zip(outcomes)
            .map(|((&scale, &ticket), outcome)| ScaleRun {
                scale,
                ticket,
                outcome,
            })
            .collect();
        MitigatedOutcome {
            mitigated,
            raw,
            runs,
            report,
        }
    }

    /// Blocks until every sub-run completes and aggregates the sweep.
    /// Returns `None` if the engine discarded a ticket (dropped
    /// mid-flight).
    pub fn wait(&self, engine: &ServeEngine) -> Option<MitigatedOutcome> {
        let mut outcomes = Vec::with_capacity(self.tickets.len());
        for &t in &self.tickets {
            outcomes.push(engine.wait(t)?);
        }
        Some(self.finish(outcomes))
    }

    /// Like [`MitigatedSweep::wait`], bounded by a total budget of
    /// `ms` milliseconds across the whole sweep.
    ///
    /// # Errors
    ///
    /// [`WaitError::Timeout`] when the budget expires first (reporting
    /// total milliseconds waited), [`WaitError::Unknown`] if a ticket
    /// was discarded.
    pub fn wait_timeout(
        &self,
        engine: &ServeEngine,
        ms: u64,
    ) -> Result<MitigatedOutcome, WaitError> {
        let started = std::time::Instant::now();
        let mut outcomes = Vec::with_capacity(self.tickets.len());
        for &t in &self.tickets {
            // Sub-waits share one budget: later tickets get whatever the
            // earlier ones left (usually everything — the engine runs
            // them concurrently, so the first wait absorbs the latency).
            let waited = u64::try_from(started.elapsed().as_millis()).unwrap_or(u64::MAX);
            match engine.wait_timeout(t, ms.saturating_sub(waited)) {
                Ok(o) => outcomes.push(o),
                Err(WaitError::Timeout { .. }) => {
                    return Err(WaitError::Timeout {
                        waited_ms: u64::try_from(started.elapsed().as_millis())
                            .unwrap_or(u64::MAX),
                    });
                }
                Err(e) => return Err(e),
            }
        }
        Ok(self.finish(outcomes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ServeConfig;
    use qnat_core::executor::{ResilientExecutor, RetryPolicy};
    use qnat_noise::backend::SimulatorBackend;
    use qnat_sim::gate::Gate;

    fn test_circuit() -> Circuit {
        let mut c = Circuit::new(2);
        c.push(Gate::ry(0, 0.6));
        c.push(Gate::cx(0, 1));
        c.push(Gate::rz(1, -0.3));
        c
    }

    fn engine(seed: u64) -> ServeEngine {
        ServeEngine::new(
            ServeConfig {
                workers: 2,
                seed,
                ..ServeConfig::default()
            },
            |_job, seed| {
                Ok(ResilientExecutor::new(
                    Box::new(SimulatorBackend::new(seed)),
                    RetryPolicy::default(),
                ))
            },
        )
    }

    #[test]
    fn sweep_shape_is_validated_before_submission() {
        let engine = engine(9);
        let mut job = MitigatedJob::zne(test_circuit(), None);
        job.scales = vec![1];
        assert_eq!(
            submit_mitigated(&engine, &job, 7).unwrap_err(),
            MitigatedSubmitError::TooFewScales { got: 1 }
        );
        job.scales = vec![1, 3, 3];
        assert_eq!(
            submit_mitigated(&engine, &job, 7).unwrap_err(),
            MitigatedSubmitError::DuplicateScale { scale: 3 }
        );
        job.scales = vec![1, 4];
        assert_eq!(
            submit_mitigated(&engine, &job, 7).unwrap_err(),
            MitigatedSubmitError::Fold(FoldError::EvenScale { scale: 4 })
        );
        job.scales = vec![1, 3];
        job.readout = Some(vec![[[1.0, 0.0], [0.0, 1.0]]]);
        assert_eq!(
            submit_mitigated(&engine, &job, 7).unwrap_err(),
            MitigatedSubmitError::ReadoutShape {
                expected: 2,
                got: 1
            }
        );
        // Nothing was ever enqueued.
        assert_eq!(engine.stats().submitted, 0);
        engine.drain();
    }

    #[test]
    fn noise_free_sweep_mitigates_to_the_ideal_expectations() {
        let engine = engine(21);
        let job = MitigatedJob::zne(test_circuit(), None);
        let sweep = submit_mitigated(&engine, &job, 0xA11CE).expect("submit");
        assert_eq!(sweep.tickets.len(), 3);
        let outcome = sweep.wait(&engine).expect("tickets live");
        let mitigated = outcome.mitigated.expect("aggregation succeeds");
        let raw = outcome.raw.expect("scale-1 run succeeded");
        // On a noise-free backend every folded run is identical, so the
        // extrapolation is flat and the mitigated result equals raw.
        for (m, r) in mitigated.expectations.iter().zip(&raw) {
            assert!((m - r).abs() < 1e-12);
        }
        engine.drain();
    }

    #[test]
    fn aggregate_rejects_failed_subrun_with_scale_attribution() {
        let results = vec![
            Ok(Measurements {
                expectations: vec![0.5],
                shots_used: None,
            }),
            Err(BackendError::TransientFailure {
                job: 1,
                reason: "injected".into(),
            }),
        ];
        let err = aggregate_sweep(&[1, 3], &results, None, ZneMethod::Linear).unwrap_err();
        assert!(matches!(err, MitigationError::SubRun { scale: 3, .. }));
    }

    #[test]
    fn aggregate_surfaces_singular_confusion() {
        let m = Measurements {
            expectations: vec![0.2],
            shots_used: None,
        };
        let results = vec![Ok(m.clone()), Ok(m)];
        let coin: Confusion = [[0.5, 0.5], [0.5, 0.5]];
        let err =
            aggregate_sweep(&[1, 3], &results, Some(&[coin]), ZneMethod::Linear).unwrap_err();
        assert!(matches!(
            err,
            MitigationError::Math(MitigateError::SingularConfusion { .. })
        ));
    }

    #[test]
    fn sub_seed_schedule_is_the_repo_standard() {
        let sweep_seed = 0xDEAD_BEEF;
        for k in 0..5u64 {
            assert_eq!(
                sub_seed(sweep_seed, k),
                splitmix64(sweep_seed ^ splitmix64(k))
            );
        }
    }
}
