//! Bulk-lane hyper-parameter grids: the §4.2 sweep served as background
//! traffic.
//!
//! [`qnat_core::sweep::select_hyperparameters`] *trains* one model per
//! `(T, levels)` candidate — an offline job. At serving time the useful
//! remnant of that grid is the inference-side half: evaluating a deployed
//! model under each candidate's quantization level. The noise factor `T`
//! is a training-time knob (it shapes the gate-insertion noise the model
//! is trained against, not the deployed pipeline), so candidates sharing
//! a quantization level produce identical served outputs — the sweep
//! caches per level and reports every grid point.
//!
//! Every inference here runs on [`Lane::Bulk`], so a grid sweep never
//! starves interactive traffic on the same engines.

use crate::engine::Lane;
use crate::qnn::ServingQnn;
use qnat_core::forward::QuantizeSpec;
use qnat_core::infer::{infer, InferError, InferenceBackend, InferenceOptions};
use qnat_core::sweep::{SweepConfig, SweepPoint};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

/// One grid candidate's served evaluation.
#[derive(Debug, Clone)]
pub struct BulkSweepRecord {
    /// The candidate.
    pub point: SweepPoint,
    /// Class logits per sample under the candidate's quantization level.
    pub logits: Vec<Vec<f64>>,
    /// Accuracy against the provided labels, if any.
    pub accuracy: Option<f64>,
}

/// Serves the full `t_factors × levels` grid of `sweep` through the
/// deployment's bulk lane, evaluating `features` once per distinct
/// quantization level (see the module docs) and reporting every grid
/// point in grid order. The deployment's lane selection is restored
/// afterwards.
///
/// # Errors
///
/// Returns [`InferError`] if any served inference fails past every retry,
/// fallback and admission decision.
///
/// # Panics
///
/// Panics if the sweep grid is empty.
pub fn bulk_grid_sweep(
    serving: &ServingQnn<'_>,
    sweep: &SweepConfig,
    features: &[Vec<f64>],
    labels: Option<&[usize]>,
    base: &InferenceOptions,
) -> Result<Vec<BulkSweepRecord>, InferError> {
    let grid = sweep.grid();
    assert!(!grid.is_empty(), "empty sweep grid");
    let previous = serving.lane();
    serving.set_lane(Lane::Bulk);
    let outcome = run_grid(serving, &grid, sweep.seed, features, labels, base);
    serving.set_lane(previous);
    outcome
}

fn run_grid(
    serving: &ServingQnn<'_>,
    grid: &[SweepPoint],
    seed: u64,
    features: &[Vec<f64>],
    labels: Option<&[usize]>,
    base: &InferenceOptions,
) -> Result<Vec<BulkSweepRecord>, InferError> {
    let mut by_level: HashMap<usize, Vec<Vec<f64>>> = HashMap::new();
    let mut records = Vec::with_capacity(grid.len());
    for &point in grid {
        let logits = match by_level.get(&point.levels) {
            Some(cached) => cached.clone(),
            None => {
                let opts = InferenceOptions {
                    quantize: Some(QuantizeSpec::levels(point.levels)),
                    ..base.clone()
                };
                // The serving backend never samples from this RNG (jobs
                // are ticket-seeded); it only satisfies infer's API.
                let mut rng = StdRng::seed_from_u64(seed);
                let result = infer(
                    serving.qnn(),
                    features,
                    &InferenceBackend::Serving(serving),
                    &opts,
                    &mut rng,
                )?;
                by_level.insert(point.levels, result.logits.clone());
                result.logits
            }
        };
        let accuracy = labels.map(|l| qnat_core::metrics::accuracy(&logits, l));
        records.push(BulkSweepRecord {
            point,
            logits,
            accuracy,
        });
    }
    Ok(records)
}
