//! The [`ServeEngine`]: a bounded multi-producer job queue over a
//! persistent worker pool.
//!
//! [`qnat_core::batch::BatchExecutor`] blocks the caller until a whole
//! batch drains; a serving deployment instead accepts jobs as they arrive
//! ([`ServeEngine::submit`]), runs them on long-lived workers, and hands
//! results back through [`ServeEngine::poll`] (non-blocking),
//! [`ServeEngine::wait`] (blocking) or [`ServeEngine::subscribe`] (a
//! channel stream in completion order).
//!
//! ## Determinism: the ticket is the job index
//!
//! Every accepted submission gets a monotonically increasing [`Ticket`],
//! and the job's executor seed is
//! `splitmix64(engine_seed ^ splitmix64(ticket))` — exactly the derivation
//! [`qnat_core::batch::BatchExecutor`] applies to its job indices. Both
//! layers run jobs through [`qnat_core::batch::run_job`], so a served
//! workload replayed as one batch (same factory, batch seed = engine
//! seed, jobs in ticket order) is **bitwise identical** per ticket,
//! regardless of worker count or submission interleaving — pinned by
//! `qnat-serve/tests/replay_props.rs`. What is *not* deterministic is
//! completion order: subscribers observe whichever job finishes first.
//!
//! ## Admission control and backpressure
//!
//! With an [`AdmissionControl`] configured, every submission consults the
//! target backend's [`CircuitBreaker`](qnat_core::health::CircuitBreaker)
//! in the shared [`HealthRegistry`] as a streaming epoch of one
//! (`plan_epoch(1)` at submit, `observe` + `end_epoch` at completion).
//! Open-breaker submissions are shed, fast-failed or routed straight to
//! the fallback per [`OpenAction`]; shed and fast-failed submissions
//! still serve the breaker's cooldown, so a broken backend can recover.
//! Unlike the batch layer's epoch barriers, observations arrive in
//! completion order — trip points may vary across runs (a documented
//! relaxation; job *results* stay deterministic because admission only
//! selects between run/fallback/refuse, never reseeds).
//!
//! Each priority lane ([`Lane::Interactive`] drains before [`Lane::Bulk`])
//! has its own capacity and [`BackpressurePolicy`]: block the producer,
//! reject the submission, or shed the oldest queued job (which completes
//! with [`BackendError::Overloaded`]).

use qnat_core::batch::{job_signal, run_job, BatchJob, JobDeadline};
use qnat_core::executor::{splitmix64, ExecutionReport, ResilientExecutor};
use qnat_core::health::{Admission, BreakerPolicy, HealthRegistry};
use qnat_noise::backend::{BackendError, Measurements};
use std::collections::{HashMap, HashSet, VecDeque};
use std::error::Error;
use std::fmt;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

/// Handle to one accepted submission. Tickets are dense and monotonic:
/// the ticket *is* the job index a batch replay of the served workload
/// would use.
pub type Ticket = u64;

/// Priority lane of a submission. Interactive jobs are always popped
/// before bulk jobs; each lane has its own capacity and backpressure
/// policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Lane {
    /// Latency-sensitive foreground traffic — drained first.
    Interactive,
    /// Throughput-oriented background traffic (hyper-parameter grids,
    /// sweeps) — drained when the interactive lane is empty.
    Bulk,
}

/// What `submit` does when a lane is at capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackpressurePolicy {
    /// Block the producer until a worker frees a slot.
    Block,
    /// Fail the submission with [`SubmitError::QueueFull`].
    RejectWhenFull,
    /// Evict the oldest queued job of the lane — it completes with
    /// [`BackendError::Overloaded`] — and accept the new one.
    ShedOldest,
}

/// Capacity and backpressure policy of one lane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaneConfig {
    /// Maximum queued (not yet running) jobs (clamped to ≥ 1).
    pub capacity: usize,
    /// What to do when the lane is full.
    pub backpressure: BackpressurePolicy,
}

impl LaneConfig {
    /// A lane of `capacity` that blocks producers when full.
    pub fn blocking(capacity: usize) -> Self {
        LaneConfig {
            capacity,
            backpressure: BackpressurePolicy::Block,
        }
    }

    /// A lane of `capacity` that rejects submissions when full.
    pub fn rejecting(capacity: usize) -> Self {
        LaneConfig {
            capacity,
            backpressure: BackpressurePolicy::RejectWhenFull,
        }
    }

    /// A lane of `capacity` that sheds its oldest queued job when full.
    pub fn shedding(capacity: usize) -> Self {
        LaneConfig {
            capacity,
            backpressure: BackpressurePolicy::ShedOldest,
        }
    }
}

impl Default for LaneConfig {
    fn default() -> Self {
        LaneConfig::blocking(64)
    }
}

/// What an open target-backend breaker does to a submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpenAction {
    /// Accept the ticket, complete it immediately with
    /// [`BackendError::CircuitOpen`] — the job never runs.
    FastFail,
    /// Refuse the submission with [`SubmitError::Shed`] — no ticket.
    Shed,
    /// Accept the job but short-circuit its executor straight to the
    /// fallback backend (the batch health layer's behaviour).
    Fallback,
}

/// Enqueue-time admission control against one backend's circuit breaker.
#[derive(Debug, Clone)]
pub struct AdmissionControl {
    /// Registry key of the target backend's breaker.
    pub key: String,
    /// Breaker thresholds. `decision_interval` is ignored here — the
    /// serving layer streams epochs of one job.
    pub policy: BreakerPolicy,
    /// What an open breaker does to new submissions.
    pub on_open: OpenAction,
}

/// Engine-wide configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Persistent worker threads (clamped to ≥ 1).
    pub workers: usize,
    /// Engine seed: job `t` runs under
    /// `splitmix64(seed ^ splitmix64(t))`, exactly as a
    /// [`qnat_core::batch::BatchExecutor`] with this batch seed would.
    pub seed: u64,
    /// The interactive (high-priority) lane.
    pub interactive: LaneConfig,
    /// The bulk (background) lane.
    pub bulk: LaneConfig,
    /// Optional per-job backoff budget in milliseconds
    /// ([`JobDeadline::PerJob`]).
    pub deadline_ms: Option<u64>,
    /// Optional enqueue-time admission control.
    pub admission: Option<AdmissionControl>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            seed: 0,
            interactive: LaneConfig::default(),
            bulk: LaneConfig::default(),
            deadline_ms: None,
            admission: None,
        }
    }
}

/// Why a submission was not accepted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The lane is at capacity under
    /// [`BackpressurePolicy::RejectWhenFull`].
    QueueFull {
        /// The refusing lane.
        lane: Lane,
        /// Its configured capacity.
        capacity: usize,
    },
    /// Admission control shed the job: the target backend's breaker is
    /// open and the engine runs [`OpenAction::Shed`].
    Shed {
        /// Registry key of the open breaker.
        backend: String,
    },
    /// The engine is draining or dropped; no new work is accepted.
    Stopping,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::QueueFull { lane, capacity } => {
                write!(f, "{lane:?} lane full ({capacity} queued jobs)")
            }
            SubmitError::Shed { backend } => {
                write!(f, "shed: circuit breaker open for backend {backend}")
            }
            SubmitError::Stopping => write!(f, "engine is stopping"),
        }
    }
}

impl Error for SubmitError {}

impl From<SubmitError> for BackendError {
    fn from(e: SubmitError) -> Self {
        match e {
            SubmitError::Shed { backend } => BackendError::CircuitOpen { backend },
            other => BackendError::Overloaded {
                reason: other.to_string(),
            },
        }
    }
}

/// Why a bounded [`ServeEngine::wait_timeout`] returned without an
/// outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitError {
    /// The ticket did not complete within the budget; it is still live
    /// and a later `wait`/`wait_timeout`/`poll` can still consume it.
    Timeout {
        /// The budget that elapsed, in milliseconds.
        waited_ms: u64,
    },
    /// The engine does not know the ticket (never issued, already
    /// consumed, or discarded at shutdown).
    Unknown,
}

impl fmt::Display for WaitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WaitError::Timeout { waited_ms } => {
                write!(f, "ticket not ready after {waited_ms} ms")
            }
            WaitError::Unknown => write!(f, "unknown ticket"),
        }
    }
}

impl Error for WaitError {}

/// A point-in-time view of how much work an engine is holding — the
/// queue-depth half of a fleet router's scoring input.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineLoad {
    /// Jobs queued (not running) on the interactive lane.
    pub queued_interactive: usize,
    /// Jobs queued (not running) on the bulk lane.
    pub queued_bulk: usize,
    /// Jobs currently executing on workers.
    pub running: usize,
}

impl EngineLoad {
    /// Total jobs the engine is holding (queued + running).
    pub fn total(&self) -> usize {
        self.queued_interactive + self.queued_bulk + self.running
    }
}

/// Everything one finished job produced.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    /// The job's result (fallback rescues included).
    pub result: Result<Measurements, BackendError>,
    /// The job's execution report (retries, backoff, degradation).
    pub report: ExecutionReport,
}

/// Non-blocking status of a ticket ([`ServeEngine::poll`]).
#[derive(Debug, Clone, PartialEq)]
pub enum Poll {
    /// Still waiting in a lane.
    Queued,
    /// A worker is executing it right now.
    Running,
    /// Finished — the outcome is handed over (a second poll of the same
    /// ticket returns [`Poll::Unknown`]).
    Ready(JobOutcome),
    /// Never submitted, already consumed, or discarded at shutdown.
    Unknown,
}

/// Counters of everything the engine did so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Tickets issued (fast-failed submissions included).
    pub submitted: u64,
    /// Jobs completed (failures, evictions and fast-fails included).
    pub completed: u64,
    /// Completions whose result was `Ok` — the goodput numerator a load
    /// harness or `/healthz` reader wants without replaying outcomes.
    pub completed_ok: u64,
    /// Completions whose result was a typed error (evictions and
    /// fast-fails included). `completed_ok + completed_err == completed`.
    pub completed_err: u64,
    /// Submissions refused with [`SubmitError::QueueFull`].
    pub rejected_full: u64,
    /// Queued jobs evicted by [`BackpressurePolicy::ShedOldest`].
    pub shed_oldest: u64,
    /// Submissions shed by admission control (no ticket issued).
    pub shed_admission: u64,
    /// Submissions fast-failed by admission control
    /// ([`OpenAction::FastFail`]).
    pub fast_failed: u64,
}

/// One queued submission.
struct Queued {
    ticket: Ticket,
    job: BatchJob,
    /// The breaker's verdict at enqueue time (`None` without admission
    /// control). `ShortCircuit` here means [`OpenAction::Fallback`].
    admission: Option<Admission>,
    /// The global job index `run_job` reports failures under — the local
    /// ticket, unless a router overrode it at submit time.
    global: u64,
    /// The executor seed — ticket-derived, unless a router pinned it.
    seed: u64,
}

/// Mutable engine state behind the one mutex.
struct State {
    next_ticket: u64,
    /// `lanes[0]` interactive, `lanes[1]` bulk.
    lanes: [VecDeque<Queued>; 2],
    running: HashSet<Ticket>,
    ready: HashMap<Ticket, JobOutcome>,
    subscribers: Vec<Sender<(Ticket, Result<Measurements, BackendError>)>>,
    stats: EngineStats,
    /// No new submissions; workers finish the queue.
    stopping: bool,
    /// Queued jobs were discarded (drop path); workers exit immediately.
    discard: bool,
    /// Workers hold off popping (deterministic tests).
    paused: bool,
    /// Probe admissions currently queued or running — bounds concurrent
    /// half-open probes at the policy's `probe_budget` (a streaming
    /// `plan_epoch(1)` would otherwise grant one probe per submission).
    outstanding_probes: usize,
}

fn lane_index(lane: Lane) -> usize {
    match lane {
        Lane::Interactive => 0,
        Lane::Bulk => 1,
    }
}

struct Shared {
    state: Mutex<State>,
    /// Workers wait here for jobs.
    jobs_cv: Condvar,
    /// Blocked producers wait here for lane space.
    space_cv: Condvar,
    /// `wait` callers wait here for completions.
    done_cv: Condvar,
    registry: Arc<HealthRegistry>,
    factory: Box<dyn Fn(u64, u64) -> Result<ResilientExecutor, BackendError> + Send + Sync>,
    config: ServeConfig,
}

impl Shared {
    fn lock_state(&self) -> MutexGuard<'_, State> {
        // A poisoned lock means a worker panicked mid-delivery; the queue
        // bookkeeping is still consistent (mutations happen before any
        // panic-prone user code), so keep serving.
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn deliver(&self, st: &mut State, ticket: Ticket, outcome: JobOutcome) {
        st.subscribers
            .retain(|tx| tx.send((ticket, outcome.result.clone())).is_ok());
        if outcome.result.is_ok() {
            st.stats.completed_ok += 1;
        } else {
            st.stats.completed_err += 1;
        }
        st.ready.insert(ticket, outcome);
        st.stats.completed += 1;
        self.done_cv.notify_all();
    }
}

/// A long-lived serving front-end: bounded multi-producer job queue,
/// persistent worker pool, admission control and per-lane backpressure.
/// See the module docs for the determinism contract.
pub struct ServeEngine {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl ServeEngine {
    /// Starts `config.workers` persistent workers over `factory` with a
    /// private [`HealthRegistry`].
    ///
    /// `factory` receives `(ticket, seed)` — the same contract as the
    /// batch layer's factory, so the exact closure handed to a
    /// [`qnat_core::batch::BatchExecutor`] serves here too.
    pub fn new<F>(config: ServeConfig, factory: F) -> Self
    where
        F: Fn(u64, u64) -> Result<ResilientExecutor, BackendError> + Send + Sync + 'static,
    {
        Self::with_registry(config, factory, Arc::new(HealthRegistry::new()))
    }

    /// Like [`ServeEngine::new`], but breakers live in a shared
    /// `registry` so several engines (e.g. one per QNN block) pool their
    /// health bookkeeping under distinct keys.
    pub fn with_registry<F>(
        mut config: ServeConfig,
        factory: F,
        registry: Arc<HealthRegistry>,
    ) -> Self
    where
        F: Fn(u64, u64) -> Result<ResilientExecutor, BackendError> + Send + Sync + 'static,
    {
        config.workers = config.workers.max(1);
        config.interactive.capacity = config.interactive.capacity.max(1);
        config.bulk.capacity = config.bulk.capacity.max(1);
        let workers = config.workers;
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                next_ticket: 0,
                lanes: [VecDeque::new(), VecDeque::new()],
                running: HashSet::new(),
                ready: HashMap::new(),
                subscribers: Vec::new(),
                stats: EngineStats::default(),
                stopping: false,
                discard: false,
                paused: false,
                outstanding_probes: 0,
            }),
            jobs_cv: Condvar::new(),
            space_cv: Condvar::new(),
            done_cv: Condvar::new(),
            registry,
            factory: Box::new(factory),
            config,
        });
        let handles = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        ServeEngine { shared, handles }
    }

    /// The per-job executor seed for ticket `t` — the same pure function
    /// of `(engine seed, ticket)` that
    /// [`qnat_core::batch::BatchExecutor::job_seed`] computes from its
    /// batch seed and job index.
    pub fn job_seed(&self, ticket: Ticket) -> u64 {
        splitmix64(self.shared.config.seed ^ splitmix64(ticket))
    }

    /// Enqueues a job on `lane` and returns its [`Ticket`].
    ///
    /// With admission control configured, the target breaker is consulted
    /// first: an open breaker sheds, fast-fails or falls the job back per
    /// [`OpenAction`]. A full lane then applies its
    /// [`BackpressurePolicy`] — under [`BackpressurePolicy::Block`] this
    /// call blocks until a worker frees a slot.
    ///
    /// # Errors
    ///
    /// [`SubmitError::QueueFull`] when a rejecting lane is full,
    /// [`SubmitError::Shed`] when admission control refuses the job, and
    /// [`SubmitError::Stopping`] once the engine drains or drops.
    pub fn submit(&self, job: BatchJob, lane: Lane) -> Result<Ticket, SubmitError> {
        self.submit_inner(job, lane, None)
    }

    /// Like [`ServeEngine::submit`], but with the job's global index and
    /// executor seed pinned by the caller instead of derived from the
    /// local ticket.
    ///
    /// This is the fleet hook: a router spreading one logical workload
    /// over several engines keeps the fleet-wide invariant
    /// `seed = splitmix64(fleet_seed ^ splitmix64(fleet_job))` intact
    /// regardless of which engine (and therefore which local ticket) a
    /// job lands on — including a failover or hedged re-submission of the
    /// *same* `(global, seed)` pair, which runs bitwise identically on an
    /// identical device. Admission control and backpressure apply exactly
    /// as in `submit`; the returned ticket is still this engine's local
    /// handle.
    ///
    /// # Errors
    ///
    /// Same contract as [`ServeEngine::submit`].
    pub fn submit_routed(
        &self,
        job: BatchJob,
        lane: Lane,
        global: u64,
        seed: u64,
    ) -> Result<Ticket, SubmitError> {
        self.submit_inner(job, lane, Some((global, seed)))
    }

    fn submit_inner(
        &self,
        job: BatchJob,
        lane: Lane,
        routed: Option<(u64, u64)>,
    ) -> Result<Ticket, SubmitError> {
        let shared = &*self.shared;
        let mut st = shared.lock_state();
        if st.stopping {
            return Err(SubmitError::Stopping);
        }
        // Admission: a streaming epoch of one job. Shed and fast-failed
        // submissions still plan (and therefore tick) the breaker's
        // cooldown, which is what lets an open breaker reach half-open
        // and recover under pure submission pressure.
        let mut admission = None;
        if let Some(ac) = &shared.config.admission {
            let mut planned = shared
                .registry
                .with_breaker(&ac.key, &ac.policy, |b| b.plan_epoch(1)[0]);
            if planned == Admission::Probe {
                // plan_epoch(1) grants a probe on *every* half-open
                // submission; cap concurrent probes at the budget.
                if st.outstanding_probes >= ac.policy.probe_budget.max(1) {
                    planned = Admission::ShortCircuit;
                }
            }
            match planned {
                Admission::ShortCircuit => match ac.on_open {
                    OpenAction::Shed => {
                        st.stats.shed_admission += 1;
                        return Err(SubmitError::Shed {
                            backend: ac.key.clone(),
                        });
                    }
                    OpenAction::FastFail => {
                        let ticket = st.next_ticket;
                        st.next_ticket += 1;
                        st.stats.submitted += 1;
                        st.stats.fast_failed += 1;
                        let outcome = JobOutcome {
                            result: Err(BackendError::CircuitOpen {
                                backend: ac.key.clone(),
                            }),
                            report: ExecutionReport::default(),
                        };
                        shared.deliver(&mut st, ticket, outcome);
                        return Ok(ticket);
                    }
                    OpenAction::Fallback => admission = Some(Admission::ShortCircuit),
                },
                Admission::Probe => {
                    st.outstanding_probes += 1;
                    admission = Some(Admission::Probe);
                }
                Admission::Primary => admission = Some(Admission::Primary),
            }
        }
        // Backpressure on the target lane.
        let li = lane_index(lane);
        let cfg = match lane {
            Lane::Interactive => &shared.config.interactive,
            Lane::Bulk => &shared.config.bulk,
        };
        let cap = cfg.capacity;
        if st.lanes[li].len() >= cap {
            match cfg.backpressure {
                BackpressurePolicy::Block => {
                    while st.lanes[li].len() >= cap && !st.stopping {
                        st = shared
                            .space_cv
                            .wait(st)
                            .unwrap_or_else(|p| p.into_inner());
                    }
                    if st.stopping {
                        if admission == Some(Admission::Probe) {
                            st.outstanding_probes = st.outstanding_probes.saturating_sub(1);
                        }
                        return Err(SubmitError::Stopping);
                    }
                }
                BackpressurePolicy::RejectWhenFull => {
                    st.stats.rejected_full += 1;
                    if admission == Some(Admission::Probe) {
                        st.outstanding_probes = st.outstanding_probes.saturating_sub(1);
                    }
                    return Err(SubmitError::QueueFull {
                        lane,
                        capacity: cap,
                    });
                }
                BackpressurePolicy::ShedOldest => {
                    if let Some(victim) = st.lanes[li].pop_front() {
                        if victim.admission == Some(Admission::Probe) {
                            st.outstanding_probes = st.outstanding_probes.saturating_sub(1);
                        }
                        st.stats.shed_oldest += 1;
                        let outcome = JobOutcome {
                            result: Err(BackendError::Overloaded {
                                reason: format!(
                                    "job {} shed from {lane:?} lane by a newer submission \
                                     (capacity {cap})",
                                    victim.ticket
                                ),
                            }),
                            report: ExecutionReport::default(),
                        };
                        shared.deliver(&mut st, victim.ticket, outcome);
                    }
                }
            }
        }
        let ticket = st.next_ticket;
        st.next_ticket += 1;
        st.stats.submitted += 1;
        let (global, seed) = routed.unwrap_or((
            ticket,
            splitmix64(shared.config.seed ^ splitmix64(ticket)),
        ));
        st.lanes[li].push_back(Queued {
            ticket,
            job,
            admission,
            global,
            seed,
        });
        shared.jobs_cv.notify_one();
        Ok(ticket)
    }

    /// Non-blocking status of `ticket`. [`Poll::Ready`] hands the outcome
    /// over — the engine forgets the ticket afterwards.
    pub fn poll(&self, ticket: Ticket) -> Poll {
        let mut st = self.shared.lock_state();
        if let Some(outcome) = st.ready.remove(&ticket) {
            return Poll::Ready(outcome);
        }
        if st.running.contains(&ticket) {
            return Poll::Running;
        }
        if st.lanes.iter().any(|q| q.iter().any(|j| j.ticket == ticket)) {
            return Poll::Queued;
        }
        Poll::Unknown
    }

    /// Blocks until `ticket` completes and hands its outcome over.
    /// Returns `None` for tickets the engine does not know (never issued,
    /// already consumed, or discarded at shutdown).
    pub fn wait(&self, ticket: Ticket) -> Option<JobOutcome> {
        let mut st = self.shared.lock_state();
        loop {
            if let Some(outcome) = st.ready.remove(&ticket) {
                return Some(outcome);
            }
            let pending = st.running.contains(&ticket)
                || st.lanes.iter().any(|q| q.iter().any(|j| j.ticket == ticket));
            if !pending {
                return None;
            }
            st = self
                .shared
                .done_cv
                .wait(st)
                .unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Like [`ServeEngine::wait`], but bounded: blocks at most `ms`
    /// milliseconds. On [`WaitError::Timeout`] the ticket stays live —
    /// its outcome is *not* consumed and any later wait or poll can still
    /// claim it, which is what lets a fleet router hedge a slow job on a
    /// second device and deterministically discard the loser.
    ///
    /// # Errors
    ///
    /// [`WaitError::Timeout`] when the budget elapses first,
    /// [`WaitError::Unknown`] for tickets the engine does not know.
    pub fn wait_timeout(&self, ticket: Ticket, ms: u64) -> Result<JobOutcome, WaitError> {
        let deadline = std::time::Instant::now() + std::time::Duration::from_millis(ms);
        let mut st = self.shared.lock_state();
        loop {
            if let Some(outcome) = st.ready.remove(&ticket) {
                return Ok(outcome);
            }
            let pending = st.running.contains(&ticket)
                || st.lanes.iter().any(|q| q.iter().any(|j| j.ticket == ticket));
            if !pending {
                return Err(WaitError::Unknown);
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return Err(WaitError::Timeout { waited_ms: ms });
            }
            let (guard, _) = self
                .shared
                .done_cv
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(|p| p.into_inner());
            st = guard;
        }
    }

    /// A result stream: every completion (evictions and fast-fails
    /// included) is sent as `(ticket, result)` in completion order. The
    /// channel disconnects when the engine drains or drops.
    pub fn subscribe(&self) -> Receiver<(Ticket, Result<Measurements, BackendError>)> {
        let (tx, rx) = channel();
        self.shared.lock_state().subscribers.push(tx);
        rx
    }

    /// Holds workers off popping new jobs (running jobs finish). For
    /// deterministic backpressure/priority tests.
    pub fn pause(&self) {
        self.shared.lock_state().paused = true;
    }

    /// Resumes a paused engine.
    pub fn resume(&self) {
        self.shared.lock_state().paused = false;
        self.shared.jobs_cv.notify_all();
    }

    /// Counter snapshot.
    pub fn stats(&self) -> EngineStats {
        self.shared.lock_state().stats
    }

    /// Jobs currently queued (not running) on `lane`.
    pub fn queue_depth(&self, lane: Lane) -> usize {
        self.shared.lock_state().lanes[lane_index(lane)].len()
    }

    /// Queue depths and running count in one consistent snapshot — what a
    /// fleet router scores candidate engines by.
    pub fn load(&self) -> EngineLoad {
        let st = self.shared.lock_state();
        EngineLoad {
            queued_interactive: st.lanes[0].len(),
            queued_bulk: st.lanes[1].len(),
            running: st.running.len(),
        }
    }

    /// The breaker registry admission control consults.
    pub fn health_registry(&self) -> &Arc<HealthRegistry> {
        &self.shared.registry
    }

    /// Graceful shutdown: stops accepting submissions, lets the workers
    /// finish every queued job, joins them, and returns the final stats.
    /// Unconsumed outcomes are dropped with the engine.
    pub fn drain(mut self) -> EngineStats {
        {
            let mut st = self.shared.lock_state();
            st.stopping = true;
            st.paused = false;
        }
        self.shared.jobs_cv.notify_all();
        self.shared.space_cv.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
        let stats = self.shared.lock_state().stats;
        stats
    }
}

impl Drop for ServeEngine {
    /// Immediate shutdown: queued jobs are discarded (their `wait`ers get
    /// `None`), running jobs finish, workers are joined.
    fn drop(&mut self) {
        {
            let mut st = self.shared.lock_state();
            st.stopping = true;
            st.discard = true;
            st.paused = false;
            st.lanes[0].clear();
            st.lanes[1].clear();
        }
        self.shared.jobs_cv.notify_all();
        self.shared.space_cv.notify_all();
        self.shared.done_cv.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// The persistent worker: pop (interactive before bulk), run through the
/// batch layer's [`run_job`] core, observe the breaker, deliver.
fn worker_loop(shared: &Shared) {
    loop {
        let queued = {
            let mut st = shared.lock_state();
            loop {
                if st.discard {
                    return;
                }
                if !st.paused {
                    let popped = st.lanes[0].pop_front().or_else(|| st.lanes[1].pop_front());
                    if let Some(q) = popped {
                        st.running.insert(q.ticket);
                        shared.space_cv.notify_all();
                        break q;
                    }
                    if st.stopping {
                        return;
                    }
                }
                st = shared.jobs_cv.wait(st).unwrap_or_else(|p| p.into_inner());
            }
        };
        let deadline = shared.config.deadline_ms.map(JobDeadline::PerJob);
        let short = queued.admission == Some(Admission::ShortCircuit);
        let (result, report) = run_job(
            &*shared.factory,
            queued.global,
            queued.seed,
            &queued.job,
            short,
            deadline.as_ref(),
        );
        // Feed the breaker *without* the state lock (lock order: state →
        // registry on the submit path; never registry → state here).
        if let (Some(ac), Some(adm)) = (&shared.config.admission, queued.admission) {
            let signal = job_signal(&result, &report);
            shared.registry.with_breaker(&ac.key, &ac.policy, |b| {
                b.observe(adm, signal);
                b.end_epoch();
            });
        }
        let mut st = shared.lock_state();
        if queued.admission == Some(Admission::Probe) {
            st.outstanding_probes = st.outstanding_probes.saturating_sub(1);
        }
        st.running.remove(&queued.ticket);
        shared.deliver(&mut st, queued.ticket, JobOutcome { result, report });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qnat_core::batch::BatchExecutor;
    use qnat_core::executor::RetryPolicy;
    use qnat_core::health::BreakerState;
    use qnat_noise::backend::SimulatorBackend;
    use qnat_noise::fault::{FaultSpec, FaultyBackend};
    use qnat_sim::circuit::Circuit;
    use qnat_sim::gate::Gate;

    fn job(k: usize) -> BatchJob {
        let mut c = Circuit::new(2);
        c.push(Gate::ry(0, 0.1 + 0.05 * k as f64));
        c.push(Gate::cx(0, 1));
        BatchJob::exact(c)
    }

    fn faulty_factory(
        rate: f64,
    ) -> impl Fn(u64, u64) -> Result<ResilientExecutor, BackendError> + Send + Sync + 'static
    {
        move |_job, seed| {
            Ok(ResilientExecutor::new(
                Box::new(FaultyBackend::new(
                    SimulatorBackend::new(seed),
                    FaultSpec::transient(rate, seed),
                )),
                RetryPolicy::default(),
            ))
        }
    }

    /// Primary is a total outage until the backend's job counter reaches
    /// `heal_at`; no per-executor fallback, so failures surface.
    fn outage_factory(
        heal_at: u64,
    ) -> impl Fn(u64, u64) -> Result<ResilientExecutor, BackendError> + Send + Sync + 'static
    {
        move |job, seed| {
            let rate = if job < heal_at { 1.0 } else { 0.0 };
            Ok(ResilientExecutor::new(
                Box::new(FaultyBackend::starting_at(
                    SimulatorBackend::new(seed),
                    FaultSpec::transient(rate, seed),
                    job,
                )),
                RetryPolicy {
                    max_attempts: 2,
                    ..RetryPolicy::default()
                },
            ))
        }
    }

    fn config(workers: usize) -> ServeConfig {
        ServeConfig {
            workers,
            seed: 0xbeef,
            ..ServeConfig::default()
        }
    }

    #[test]
    fn submit_wait_matches_batch_execute() {
        let jobs: Vec<BatchJob> = (0..12).map(job).collect();
        let batch = BatchExecutor::new(3, 0xbeef, faulty_factory(0.4)).execute(&jobs);
        let engine = ServeEngine::new(config(3), faulty_factory(0.4));
        let tickets: Vec<Ticket> = jobs
            .iter()
            .map(|j| engine.submit(j.clone(), Lane::Interactive).unwrap())
            .collect();
        for (k, &t) in tickets.iter().enumerate() {
            assert_eq!(t, k as u64, "tickets are dense job indices");
            let outcome = engine.wait(t).expect("job completes");
            assert_eq!(outcome.result, batch.results[k], "ticket {t}");
        }
        assert_eq!(engine.stats().completed, 12);
    }

    #[test]
    fn poll_consumes_ready_outcomes() {
        let engine = ServeEngine::new(config(2), faulty_factory(0.0));
        assert_eq!(engine.poll(99), Poll::Unknown);
        let t = engine.submit(job(0), Lane::Interactive).unwrap();
        // Spin until ready.
        let outcome = loop {
            match engine.poll(t) {
                Poll::Ready(o) => break o,
                Poll::Queued | Poll::Running => std::thread::yield_now(),
                Poll::Unknown => panic!("live ticket must not be unknown"),
            }
        };
        assert!(outcome.result.is_ok());
        assert_eq!(engine.poll(t), Poll::Unknown, "ready outcome was handed over");
        assert!(engine.wait(t).is_none());
    }

    #[test]
    fn subscribe_streams_every_completion() {
        let engine = ServeEngine::new(config(4), faulty_factory(0.3));
        let rx = engine.subscribe();
        let tickets: Vec<Ticket> = (0..10)
            .map(|k| engine.submit(job(k), Lane::Interactive).unwrap())
            .collect();
        let mut seen: Vec<Ticket> = (0..10).map(|_| rx.recv().expect("stream open").0).collect();
        seen.sort_unstable();
        assert_eq!(seen, tickets);
        let stats = engine.drain();
        assert_eq!(stats.completed, 10);
        assert!(rx.recv().is_err(), "stream disconnects after drain");
    }

    #[test]
    fn interactive_lane_preempts_bulk() {
        let engine = ServeEngine::new(config(1), faulty_factory(0.0));
        engine.pause();
        let rx = engine.subscribe();
        let b0 = engine.submit(job(0), Lane::Bulk).unwrap();
        let b1 = engine.submit(job(1), Lane::Bulk).unwrap();
        let i0 = engine.submit(job(2), Lane::Interactive).unwrap();
        engine.resume();
        let order: Vec<Ticket> = (0..3).map(|_| rx.recv().unwrap().0).collect();
        assert_eq!(order, vec![i0, b0, b1], "interactive drains first");
    }

    #[test]
    fn shed_oldest_evicts_with_overloaded() {
        let engine = ServeEngine::new(
            ServeConfig {
                workers: 1,
                interactive: LaneConfig::shedding(2),
                ..config(1)
            },
            faulty_factory(0.0),
        );
        engine.pause();
        let t0 = engine.submit(job(0), Lane::Interactive).unwrap();
        let t1 = engine.submit(job(1), Lane::Interactive).unwrap();
        let t2 = engine.submit(job(2), Lane::Interactive).unwrap();
        // t0 was evicted to make room for t2 — completed with Overloaded.
        let evicted = engine.wait(t0).expect("eviction delivers an outcome");
        assert!(matches!(
            evicted.result,
            Err(BackendError::Overloaded { .. })
        ));
        assert_eq!(engine.queue_depth(Lane::Interactive), 2);
        engine.resume();
        assert!(engine.wait(t1).unwrap().result.is_ok());
        assert!(engine.wait(t2).unwrap().result.is_ok());
        let stats = engine.stats();
        assert_eq!((stats.shed_oldest, stats.completed), (1, 3));
    }

    /// ISSUE 5 satellite: a `ShedOldest` eviction is *delivered*, not
    /// merely recorded — subscribers see the evicted ticket complete
    /// with `Overloaded` promptly (while the workers are still paused,
    /// i.e. without waiting on any job to actually run), and the
    /// outcome also remains available to `poll`/`wait` consumers.
    #[test]
    fn shed_oldest_eviction_reaches_subscribers_promptly() {
        let engine = ServeEngine::new(
            ServeConfig {
                workers: 1,
                interactive: LaneConfig::shedding(2),
                ..config(1)
            },
            faulty_factory(0.0),
        );
        let rx = engine.subscribe();
        engine.pause();
        let t0 = engine.submit(job(0), Lane::Interactive).unwrap();
        let _t1 = engine.submit(job(1), Lane::Interactive).unwrap();
        let _t2 = engine.submit(job(2), Lane::Interactive).unwrap();
        // The eviction is the only completion so far: with the workers
        // paused, nothing else can possibly be delivered.
        let (ticket, result) = rx
            .recv_timeout(std::time::Duration::from_secs(5))
            .expect("eviction is broadcast without waiting on a worker");
        assert_eq!(ticket, t0);
        assert!(matches!(result, Err(BackendError::Overloaded { .. })));
        // The same outcome is still held for a poll/wait consumer.
        match engine.poll(t0) {
            Poll::Ready(outcome) => {
                assert!(matches!(
                    outcome.result,
                    Err(BackendError::Overloaded { .. })
                ));
            }
            other => panic!("evicted ticket should be Ready, got {other:?}"),
        }
        engine.resume();
        let stats = engine.drain();
        assert_eq!((stats.shed_oldest, stats.completed), (1, 3));
    }

    #[test]
    fn reject_when_full_is_a_typed_error() {
        let engine = ServeEngine::new(
            ServeConfig {
                workers: 1,
                bulk: LaneConfig::rejecting(2),
                ..config(1)
            },
            faulty_factory(0.0),
        );
        engine.pause();
        engine.submit(job(0), Lane::Bulk).unwrap();
        engine.submit(job(1), Lane::Bulk).unwrap();
        let err = engine.submit(job(2), Lane::Bulk).unwrap_err();
        assert_eq!(
            err,
            SubmitError::QueueFull {
                lane: Lane::Bulk,
                capacity: 2
            }
        );
        // The interactive lane is unaffected.
        engine.submit(job(3), Lane::Interactive).unwrap();
        assert_eq!(engine.stats().rejected_full, 1);
        engine.resume();
    }

    #[test]
    fn blocking_lane_accepts_everything_under_multi_producer_load() {
        let engine = ServeEngine::new(
            ServeConfig {
                workers: 2,
                interactive: LaneConfig::blocking(2),
                ..config(2)
            },
            faulty_factory(0.2),
        );
        std::thread::scope(|s| {
            for p in 0..3usize {
                let engine = &engine;
                s.spawn(move || {
                    for k in 0..8 {
                        engine.submit(job(p * 8 + k), Lane::Interactive).unwrap();
                    }
                });
            }
        });
        let stats = engine.drain();
        assert_eq!((stats.submitted, stats.completed), (24, 24));
        assert_eq!(stats.rejected_full, 0);
    }

    fn admission_config(on_open: OpenAction) -> ServeConfig {
        ServeConfig {
            workers: 1,
            admission: Some(AdmissionControl {
                key: "primary".into(),
                policy: BreakerPolicy {
                    window: 4,
                    min_samples: 2,
                    failure_threshold: 0.5,
                    cooldown_jobs: 3,
                    probe_budget: 1,
                    decision_interval: 1,
                },
                on_open,
            }),
            ..config(1)
        }
    }

    #[test]
    fn open_breaker_fast_fails_submissions() {
        let engine = ServeEngine::new(admission_config(OpenAction::FastFail), outage_factory(u64::MAX));
        let mut fast_failed = 0;
        for k in 0..6 {
            let t = engine.submit(job(k), Lane::Interactive).unwrap();
            let outcome = engine.wait(t).unwrap();
            assert!(outcome.result.is_err());
            if matches!(outcome.result, Err(BackendError::CircuitOpen { .. })) {
                fast_failed += 1;
                assert_eq!(
                    outcome.report,
                    ExecutionReport::default(),
                    "fast-failed jobs never run"
                );
            }
        }
        assert!(fast_failed >= 2, "breaker must trip and fast-fail: {fast_failed}");
        assert_eq!(engine.stats().fast_failed, fast_failed);
    }

    #[test]
    fn open_breaker_sheds_submissions_without_tickets() {
        let engine = ServeEngine::new(admission_config(OpenAction::Shed), outage_factory(u64::MAX));
        let mut shed = 0;
        let mut submitted = 0;
        for k in 0..6 {
            match engine.submit(job(k), Lane::Interactive) {
                Ok(t) => {
                    submitted += 1;
                    let _ = engine.wait(t);
                }
                Err(SubmitError::Shed { backend }) => {
                    shed += 1;
                    assert_eq!(backend, "primary");
                }
                Err(e) => panic!("unexpected submit error: {e}"),
            }
        }
        assert!(shed >= 2, "breaker must trip and shed: {shed}");
        let stats = engine.stats();
        assert_eq!(stats.shed_admission, shed);
        assert_eq!(stats.submitted, submitted, "shed submissions get no ticket");
    }

    #[test]
    fn breaker_recovers_through_probes_after_outage_heals() {
        // Outage for the first 2 backend jobs; every later job is clean.
        // Trip → cooldown (served by fast-failed submissions) → half-open
        // probe → reclose.
        let engine = ServeEngine::new(admission_config(OpenAction::FastFail), outage_factory(2));
        let mut last_ok = false;
        for k in 0..24 {
            let t = engine.submit(job(k), Lane::Interactive).unwrap();
            last_ok = engine.wait(t).unwrap().result.is_ok();
        }
        assert!(last_ok, "healed backend must serve again");
        let snap = engine
            .health_registry()
            .snapshot("primary")
            .expect("breaker created");
        assert!(snap.trips >= 1, "outage must trip the breaker");
        assert!(snap.recoveries >= 1, "probe must re-close the breaker");
        assert_eq!(snap.state, BreakerState::Closed);
    }

    #[test]
    fn fallback_action_serves_open_breaker_jobs_from_fallback() {
        // Factory with a dead primary and a clean fallback: once the
        // breaker opens, admitted jobs short-circuit to the fallback and
        // still succeed — the batch health layer's semantics, streamed.
        let factory = move |_job: u64, seed: u64| -> Result<ResilientExecutor, BackendError> {
            Ok(ResilientExecutor::with_fallback(
                Box::new(FaultyBackend::new(
                    SimulatorBackend::new(seed),
                    FaultSpec::transient(1.0, seed),
                )),
                Box::new(SimulatorBackend::new(seed ^ 1)),
                RetryPolicy {
                    max_attempts: 2,
                    ..RetryPolicy::default()
                },
            ))
        };
        let engine = ServeEngine::new(admission_config(OpenAction::Fallback), factory);
        let mut short_circuited = 0usize;
        for k in 0..12 {
            let t = engine.submit(job(k), Lane::Interactive).unwrap();
            let outcome = engine.wait(t).unwrap();
            assert!(outcome.result.is_ok(), "fallback serves every job");
            short_circuited += outcome.report.short_circuited_jobs;
        }
        assert!(short_circuited > 0, "open breaker must skip the primary");
        let snap = engine.health_registry().snapshot("primary").unwrap();
        assert!(snap.trips >= 1);
    }

    #[test]
    fn submit_routed_pins_global_index_and_seed() {
        // A routed submission must run under the caller's (global, seed),
        // not the local-ticket derivation: outcome bitwise equals a direct
        // run_job with those values, even though the local ticket differs.
        use qnat_core::batch::run_job;
        let engine = ServeEngine::new(config(2), faulty_factory(0.4));
        // Burn local tickets 0..3 so routed tickets diverge from globals.
        for k in 0..3 {
            let t = engine.submit(job(k), Lane::Bulk).unwrap();
            let _ = engine.wait(t);
        }
        let fleet_seed = 0x0005_eedf_1ee7_u64;
        let factory = faulty_factory(0.4);
        for global in [7u64, 11, 42] {
            let seed = splitmix64(fleet_seed ^ splitmix64(global));
            let t = engine
                .submit_routed(job(global as usize), Lane::Interactive, global, seed)
                .unwrap();
            assert_ne!(t, global, "local ticket diverged from the global index");
            let outcome = engine.wait(t).expect("routed job completes");
            let (result, report) =
                run_job(&factory, global, seed, &job(global as usize), false, None);
            assert_eq!(outcome.result, result, "global {global}");
            assert_eq!(outcome.report, report, "global {global}");
        }
    }

    #[test]
    fn wait_timeout_times_out_and_keeps_the_ticket_live() {
        let engine = ServeEngine::new(config(1), faulty_factory(0.0));
        engine.pause();
        let t = engine.submit(job(0), Lane::Interactive).unwrap();
        let start = std::time::Instant::now();
        assert_eq!(
            engine.wait_timeout(t, 30),
            Err(WaitError::Timeout { waited_ms: 30 }),
            "paused engine cannot complete the job"
        );
        assert!(start.elapsed() >= std::time::Duration::from_millis(30));
        assert_eq!(engine.wait_timeout(9999, 10), Err(WaitError::Unknown));
        engine.resume();
        // The timeout consumed nothing: the same ticket still delivers.
        let outcome = engine.wait_timeout(t, 5_000).expect("completes after resume");
        assert!(outcome.result.is_ok());
        assert_eq!(engine.wait_timeout(t, 10), Err(WaitError::Unknown), "consumed");
    }

    #[test]
    fn load_reports_queued_and_running() {
        let engine = ServeEngine::new(config(1), faulty_factory(0.0));
        assert_eq!(engine.load(), EngineLoad::default());
        engine.pause();
        engine.submit(job(0), Lane::Interactive).unwrap();
        engine.submit(job(1), Lane::Bulk).unwrap();
        engine.submit(job(2), Lane::Bulk).unwrap();
        let load = engine.load();
        assert_eq!(load.queued_interactive, 1);
        assert_eq!(load.queued_bulk, 2);
        assert_eq!(load.total(), 3);
        engine.resume();
        let stats = engine.drain();
        assert_eq!(stats.completed, 3);
    }

    #[test]
    fn drain_finishes_queued_jobs_and_refuses_new_ones() {
        let engine = ServeEngine::new(config(2), faulty_factory(0.0));
        engine.pause();
        let tickets: Vec<Ticket> = (0..6)
            .map(|k| engine.submit(job(k), Lane::Bulk).unwrap())
            .collect();
        let rx = engine.subscribe();
        engine.resume();
        let stats = engine.drain();
        assert_eq!(stats.completed, tickets.len() as u64, "drain runs the queue dry");
        let streamed: Vec<_> = rx.try_iter().collect();
        assert_eq!(streamed.len(), tickets.len());
        assert!(streamed.iter().all(|(_, r)| r.is_ok()));
    }

    #[test]
    fn drop_discards_queued_jobs() {
        let engine = ServeEngine::new(config(1), faulty_factory(0.0));
        engine.pause();
        for k in 0..4 {
            engine.submit(job(k), Lane::Bulk).unwrap();
        }
        let rx = engine.subscribe();
        drop(engine);
        // The engine was paused, so nothing ran: every queued job was
        // discarded and the stream disconnects without delivering any.
        assert_eq!(rx.iter().count(), 0);
    }
}
