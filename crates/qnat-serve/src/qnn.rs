//! Serving deployment of a QNN: one [`ServeEngine`] per block, wired into
//! the inference pipeline through [`qnat_core::infer::ServeBackend`].
//!
//! ## Replay contract
//!
//! [`DeployServing::deploy_serving`] mirrors
//! [`Qnn::deploy_batch`](qnat_core::model::Qnn::deploy_batch) exactly:
//! the same [`Qnn::route_plan`](qnat_core::model::Qnn::route_plan) routing,
//! the same per-job backend factory (emulator primary, optional fault
//! decorator positioned at the job index, Pauli noise-model fallback), and
//! the same per-block seed `splitmix64(seed ^ block · φ)`. Each block's
//! engine numbers its tickets from zero, so the *first* inference through
//! a fresh [`ServingQnn`] is bitwise identical to the same batch through a
//! fresh `deploy_batch` deployment — pinned by
//! `qnat-serve/tests/serving_e2e.rs`. Later inferences keep advancing the
//! ticket counter (a serving queue is a stream, not a batch), so replaying
//! them as a batch requires replaying the whole served history.

use crate::engine::{
    AdmissionControl, EngineStats, Lane, LaneConfig, OpenAction, ServeConfig, ServeEngine,
};
use qnat_core::batch::BatchJob;
use qnat_core::compile_cache::PlanCache;
use qnat_core::executor::{splitmix64, ExecutionReport, ResilientExecutor, RetryPolicy};
use qnat_core::health::{BreakerPolicy, HealthRegistry};
use qnat_core::infer::{BlockPlan, ServeBackend};
use qnat_core::model::Qnn;
use qnat_noise::backend::{BackendError, EmulatorBackend, NoiseModelBackend, QuantumBackend};
use qnat_noise::device::{DeviceModel, InvalidDeviceError};
use qnat_noise::fault::{FaultSpec, FaultyBackend};
use std::cell::{Cell, RefCell};
use std::sync::Arc;

/// Admission control template for a serving deployment — the per-block
/// breaker keys are derived from the routed device windows.
#[derive(Debug, Clone)]
pub struct ServeAdmission {
    /// Breaker thresholds shared by every block's breaker.
    pub policy: BreakerPolicy,
    /// What an open breaker does to new submissions.
    pub on_open: OpenAction,
}

/// Serving-engine knobs of a deployment (everything
/// [`Qnn::deploy_batch`](qnat_core::model::Qnn::deploy_batch) does not
/// already take).
#[derive(Debug, Clone)]
pub struct ServingOptions {
    /// Persistent workers per block engine (clamped to ≥ 1).
    pub workers: usize,
    /// Deployment seed — block `b`'s engine seed is
    /// `splitmix64(seed ^ b · φ)`, matching the batch layer's per-block
    /// pool seeds.
    pub seed: u64,
    /// The interactive lane of every block engine.
    pub interactive: LaneConfig,
    /// The bulk lane of every block engine.
    pub bulk: LaneConfig,
    /// Optional per-job backoff budget in milliseconds. Leave `None` for
    /// bitwise batch-replay equality (the batch layer attaches deadlines
    /// only through its health policy).
    pub deadline_ms: Option<u64>,
    /// Optional enqueue-time admission control (one breaker per block).
    pub admission: Option<ServeAdmission>,
    /// Optional shared compiled-circuit cache: block plans are looked up
    /// by `(circuit, device-calibration, opt-level)` fingerprint through
    /// [`Qnn::route_plan_cached`](qnat_core::model::Qnn::route_plan_cached),
    /// so repeated deployments of the same model on the same device skip
    /// transpilation entirely. Hits share the compiled plan and cannot
    /// change results. `None` compiles fresh every deployment.
    pub plan_cache: Option<Arc<PlanCache>>,
}

impl Default for ServingOptions {
    fn default() -> Self {
        ServingOptions {
            workers: 4,
            seed: 0,
            interactive: LaneConfig::default(),
            bulk: LaneConfig::default(),
            deadline_ms: None,
            admission: None,
            plan_cache: None,
        }
    }
}

/// A QNN deployed onto long-lived per-block serving engines. Use through
/// [`InferenceBackend::Serving`](qnat_core::infer::InferenceBackend) or
/// submit block batches directly via
/// [`ServeBackend::serve_block_batch`].
pub struct ServingQnn<'a> {
    qnn: &'a Qnn,
    plans: Vec<BlockPlan>,
    engines: Vec<ServeEngine>,
    registry: Arc<HealthRegistry>,
    /// Finite-shot sampling (`None` = exact expectations).
    pub shots: Option<usize>,
    lane: Cell<Lane>,
    report: RefCell<ExecutionReport>,
}

/// Extension trait deploying a [`Qnn`] onto serving engines — lives here
/// because `qnat-core` cannot depend on `qnat-serve`.
pub trait DeployServing {
    /// Routes the model for `device` and starts one [`ServeEngine`] per
    /// block: hardware emulator primary, Pauli noise-model fallback,
    /// `faults` (if given) injected into the primary, every job behind a
    /// fresh ticket-seeded [`ResilientExecutor`].
    ///
    /// # Errors
    ///
    /// Returns [`InvalidDeviceError`] if the device is too small.
    fn deploy_serving<'a>(
        &'a self,
        device: &DeviceModel,
        opt_level: u8,
        policy: RetryPolicy,
        faults: Option<FaultSpec>,
        opts: &ServingOptions,
    ) -> Result<ServingQnn<'a>, InvalidDeviceError>;
}

impl DeployServing for Qnn {
    fn deploy_serving<'a>(
        &'a self,
        device: &DeviceModel,
        opt_level: u8,
        policy: RetryPolicy,
        faults: Option<FaultSpec>,
        opts: &ServingOptions,
    ) -> Result<ServingQnn<'a>, InvalidDeviceError> {
        let plans = match &opts.plan_cache {
            Some(cache) => self.route_plan_cached(device, opt_level, cache)?,
            None => self.route_plan(device, opt_level)?,
        };
        let registry = Arc::new(HealthRegistry::new());
        let engines = plans
            .iter()
            .enumerate()
            .map(|(bi, plan)| {
                // The factory mirrors BatchedQnn's job factory exactly —
                // same backends, same seed mixing, same jitter
                // decorrelation — so a serve ticket and a batch job index
                // produce the same executor.
                let view = plan.view.clone();
                let policy = policy.clone();
                let factory =
                    move |job: u64, job_seed: u64| -> Result<ResilientExecutor, BackendError> {
                        let emulator = EmulatorBackend::new(&view, job_seed)?;
                        let primary: Box<dyn QuantumBackend> = match faults {
                            // Fault *rolls* are decorrelated per job (seed ^
                            // job_seed); calibration *drift* is positioned at
                            // the ticket, so all per-job backends sample one
                            // fleet-wide drift trajectory.
                            Some(spec) => Box::new(FaultyBackend::starting_at(
                                emulator,
                                FaultSpec {
                                    seed: spec.seed ^ job_seed,
                                    ..spec
                                },
                                job,
                            )),
                            None => Box::new(emulator),
                        };
                        let fallback = NoiseModelBackend::new(&view, job_seed ^ 0x5eed)?;
                        Ok(ResilientExecutor::with_fallback(
                            primary,
                            Box::new(fallback),
                            RetryPolicy {
                                jitter_seed: policy.jitter_seed ^ job_seed,
                                ..policy.clone()
                            },
                        ))
                    };
                let engine_seed =
                    splitmix64(opts.seed ^ (bi as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
                let config = ServeConfig {
                    workers: opts.workers,
                    seed: engine_seed,
                    interactive: opts.interactive.clone(),
                    bulk: opts.bulk.clone(),
                    deadline_ms: opts.deadline_ms,
                    admission: opts.admission.as_ref().map(|a| AdmissionControl {
                        key: breaker_key(plan, bi),
                        policy: a.policy.clone(),
                        on_open: a.on_open,
                    }),
                };
                ServeEngine::with_registry(config, factory, Arc::clone(&registry))
            })
            .collect();
        Ok(ServingQnn {
            qnn: self,
            plans,
            engines,
            registry,
            shots: None,
            lane: Cell::new(Lane::Interactive),
            report: RefCell::new(ExecutionReport::default()),
        })
    }
}

/// Registry key of a block's primary-backend breaker — the same key the
/// batch health layer uses, so shared registries line up.
fn breaker_key(plan: &BlockPlan, block_idx: usize) -> String {
    format!("emulator({})/block{}", plan.view.name(), block_idx)
}

impl ServingQnn<'_> {
    /// The deployed model.
    pub fn qnn(&self) -> &Qnn {
        self.qnn
    }

    /// The lane subsequent block batches are submitted on (defaults to
    /// [`Lane::Interactive`]).
    pub fn lane(&self) -> Lane {
        self.lane.get()
    }

    /// Routes subsequent block batches onto `lane`.
    pub fn set_lane(&self, lane: Lane) {
        self.lane.set(lane);
    }

    /// Cumulative merged execution report of every served block batch.
    pub fn report(&self) -> ExecutionReport {
        self.report.borrow().clone()
    }

    /// The block's serving engine (for direct `submit`/`poll`/`wait`/
    /// `subscribe` access).
    pub fn engine(&self, block_idx: usize) -> &ServeEngine {
        &self.engines[block_idx]
    }

    /// Per-block engine stats, block-index order.
    pub fn stats(&self) -> Vec<EngineStats> {
        self.engines.iter().map(ServeEngine::stats).collect()
    }

    /// The registry holding every block's circuit breaker.
    pub fn health_registry(&self) -> &Arc<HealthRegistry> {
        &self.registry
    }

    /// Registry key of `block_idx`'s breaker.
    pub fn breaker_key(&self, block_idx: usize) -> String {
        breaker_key(&self.plans[block_idx], block_idx)
    }

    /// Gracefully drains every block engine (queued jobs finish) and
    /// returns the final per-block stats.
    pub fn drain(self) -> Vec<EngineStats> {
        self.engines.into_iter().map(ServeEngine::drain).collect()
    }
}

impl ServeBackend for ServingQnn<'_> {
    fn serve_block_batch(
        &self,
        block_idx: usize,
        rows: &[Vec<f64>],
    ) -> Result<Vec<Vec<f64>>, BackendError> {
        let block = &self.qnn.blocks()[block_idx];
        let plan = &self.plans[block_idx];
        let engine = &self.engines[block_idx];
        let lane = self.lane.get();
        let mut tickets = Vec::with_capacity(rows.len());
        for row in rows {
            let mut params = block.encoder.angles(row);
            params.extend_from_slice(self.qnn.block_params(block_idx));
            let job = BatchJob {
                circuit: plan.lowered.bind(&params),
                shots: self.shots,
            };
            tickets.push(engine.submit(job, lane).map_err(BackendError::from)?);
        }
        // Wait in ticket order and merge reports the same way — matching
        // the batch layer's job-index-ordered merge, so a served batch's
        // report equals the pooled batch's report.
        let mut merged = ExecutionReport::default();
        let mut results = Vec::with_capacity(rows.len());
        for &t in &tickets {
            match engine.wait(t) {
                Some(outcome) => {
                    merged.merge(&outcome.report);
                    results.push(outcome.result);
                }
                None => results.push(Err(BackendError::Overloaded {
                    reason: format!("ticket {t} discarded before completion"),
                })),
            }
        }
        self.report.borrow_mut().merge(&merged);
        let mut out = Vec::with_capacity(rows.len());
        for result in results {
            let m = result?;
            out.push(plan.obs.iter().map(|&w| m.expectations[w]).collect());
        }
        Ok(out)
    }

    fn serve_report(&self) -> Option<ExecutionReport> {
        Some(self.report())
    }
}
