//! End-to-end acceptance tests for the serving subsystem (ISSUE 4): the
//! batch-replay contract at the deployment level, admission control
//! through a served QNN, and the bulk-lane hyper-parameter grid.

use qnat_core::executor::RetryPolicy;
use qnat_core::health::BreakerPolicy;
use qnat_core::infer::{infer, InferenceBackend, InferenceOptions};
use qnat_core::model::{Qnn, QnnConfig};
use qnat_core::sweep::SweepConfig;
use qnat_noise::fault::FaultSpec;
use qnat_noise::presets;
use qnat_serve::{bulk_grid_sweep, DeployServing, Lane, OpenAction, ServeAdmission, ServingOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn model() -> Qnn {
    let cfg = QnnConfig::standard(16, 4, 2, 2);
    Qnn::for_device(cfg, &presets::santiago(), 7).expect("santiago fits the standard model")
}

fn features(n: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|k| (0..16).map(|j| ((k * 16 + j) as f64 * 0.013).sin()).collect())
        .collect()
}

/// ISSUE 4 acceptance: the *first* inference through a fresh serving
/// deployment is bitwise identical — logits, raw block outputs and the
/// merged execution report — to the same batch through a fresh
/// `deploy_batch` deployment with the same device, policy, faults and
/// seed. Tickets replay as job indices.
#[test]
fn first_serving_inference_bitwise_matches_fresh_batch_deployment() {
    let qnn = model();
    let batch = features(24);
    let spec = FaultSpec::transient(0.5, 99);
    let opts = InferenceOptions::default();

    let pooled = qnn
        .deploy_batch(&presets::santiago(), 2, RetryPolicy::default(), Some(spec), 4, 11)
        .expect("batch deploy");
    let mut rng = StdRng::seed_from_u64(0);
    let via_batch = infer(&qnn, &batch, &InferenceBackend::Batch(&pooled), &opts, &mut rng)
        .expect("batch inference");

    let serving = qnn
        .deploy_serving(
            &presets::santiago(),
            2,
            RetryPolicy::default(),
            Some(spec),
            &ServingOptions {
                workers: 4,
                seed: 11,
                ..ServingOptions::default()
            },
        )
        .expect("serving deploy");
    let mut rng = StdRng::seed_from_u64(0);
    let via_serve = infer(&qnn, &batch, &InferenceBackend::Serving(&serving), &opts, &mut rng)
        .expect("served inference");

    // Bitwise: f64 expectations compared by exact equality.
    assert_eq!(via_batch.block_outputs, via_serve.block_outputs);
    assert_eq!(via_batch.logits, via_serve.logits);
    assert_eq!(via_batch.report, via_serve.report);

    // Every block engine served exactly one ticket per sample.
    for stats in serving.drain() {
        assert_eq!(stats.submitted, batch.len() as u64);
        assert_eq!(stats.completed, batch.len() as u64);
        assert_eq!(stats.rejected_full + stats.shed_oldest + stats.shed_admission, 0);
    }
}

/// Admission control at the deployment level: under a total primary
/// outage, per-block breakers trip on the first served workload and
/// `OpenAction::Fallback` routes the next workload's jobs straight to the
/// fallback — same logits as the admission-free deployment (the fallback
/// serves every job either way) at a strictly lower attempt bill.
///
/// Two sequential inferences are the point: enqueue-time admission reads
/// signals observed from *completed* jobs, so a breaker tripped by the
/// first workload pays off on the second.
#[test]
fn serving_admission_trips_per_block_breakers_and_cuts_attempts() {
    let qnn = model();
    let batch = features(32);
    let dead = FaultSpec::transient(1.0, 41);
    let opts = InferenceOptions::baseline();
    let run = |admission: Option<ServeAdmission>| {
        let serving = qnn
            .deploy_serving(
                &presets::santiago(),
                2,
                RetryPolicy::default(),
                Some(dead),
                &ServingOptions {
                    workers: 4,
                    seed: 3,
                    admission,
                    ..ServingOptions::default()
                },
            )
            .expect("serving deploy");
        let mut rng = StdRng::seed_from_u64(0);
        let first = infer(&qnn, &batch, &InferenceBackend::Serving(&serving), &opts, &mut rng)
            .expect("served inference");
        let mut rng = StdRng::seed_from_u64(0);
        let second = infer(&qnn, &batch, &InferenceBackend::Serving(&serving), &opts, &mut rng)
            .expect("served inference");
        ((first, second), serving)
    };

    let (off, off_serving) = run(None);
    let (on, on_serving) = run(Some(ServeAdmission {
        policy: BreakerPolicy {
            window: 8,
            failure_threshold: 0.5,
            min_samples: 4,
            cooldown_jobs: 8,
            probe_budget: 1,
            decision_interval: 4,
        },
        on_open: OpenAction::Fallback,
    }));

    // The deterministic fallback rescues every job in both runs — before
    // and after the breakers trip.
    assert_eq!(off.0.logits, on.0.logits);
    assert_eq!(off.1.logits, on.1.logits);

    // Without admission no breakers exist; with it, one per block, and
    // the total outage trips each of them.
    assert!(off_serving.health_registry().keys().is_empty());
    let n_blocks = qnn.blocks().len();
    let keys = on_serving.health_registry().keys();
    assert_eq!(keys.len(), n_blocks);
    for bi in 0..n_blocks {
        let key = on_serving.breaker_key(bi);
        let snap = on_serving
            .health_registry()
            .snapshot(&key)
            .expect("per-block breaker registered");
        assert!(snap.trips >= 1, "dead primary must trip {key}");
    }

    // Short circuits are visible in the merged report and pay for
    // themselves: strictly fewer primary attempts than the open-loop run.
    // The reports are cumulative, so the second inference's carries both.
    let off_report = off.1.report.expect("serving carries a report");
    let on_report = on.1.report.expect("serving carries a report");
    assert!(on_report.short_circuited_jobs > 0);
    assert!(
        on_report.attempts < off_report.attempts,
        "admission on: {} attempts, off: {}",
        on_report.attempts,
        off_report.attempts
    );
    drop(off_serving);
    on_serving.drain();
}

/// The §4.2 grid served as background traffic: records come back in grid
/// order, candidates sharing a quantization level reuse one served
/// evaluation bitwise, accuracies are reported, and the deployment's lane
/// selection is restored.
#[test]
fn bulk_grid_sweep_reports_grid_order_and_caches_levels() {
    let qnn = model();
    let batch = features(8);
    let labels: Vec<usize> = (0..8).map(|k| k % 2).collect();
    let serving = qnn
        .deploy_serving(
            &presets::santiago(),
            2,
            RetryPolicy::default(),
            Some(FaultSpec::transient(0.3, 5)),
            &ServingOptions {
                workers: 2,
                seed: 17,
                ..ServingOptions::default()
            },
        )
        .expect("serving deploy");

    let sweep = SweepConfig::default();
    let grid = sweep.grid();
    let records = bulk_grid_sweep(
        &serving,
        &sweep,
        &batch,
        Some(&labels),
        &InferenceOptions::default(),
    )
    .expect("bulk sweep");

    assert_eq!(records.len(), grid.len());
    for (record, point) in records.iter().zip(&grid) {
        assert_eq!(record.point.levels, point.levels);
        assert_eq!(record.point.t_factor, point.t_factor);
        assert_eq!(record.logits.len(), batch.len());
        let acc = record.accuracy.expect("labels provided");
        assert!((0.0..=1.0).contains(&acc));
    }

    // T is a training-time knob: same level ⇒ identical served logits.
    for a in &records {
        for b in &records {
            if a.point.levels == b.point.levels {
                assert_eq!(a.logits, b.logits);
            }
        }
    }

    // The sweep ran on the bulk lane and restored the previous selection.
    assert_eq!(serving.lane(), Lane::Interactive);
    let distinct_levels = {
        let mut ls = sweep.levels.clone();
        ls.sort_unstable();
        ls.dedup();
        ls.len()
    };
    for stats in serving.stats() {
        // One ticket per sample per distinct level, nothing rejected.
        assert_eq!(stats.submitted, (batch.len() * distinct_levels) as u64);
        assert_eq!(stats.rejected_full + stats.shed_oldest + stats.shed_admission, 0);
    }
    serving.drain();
}
