//! Property tests for the mitigated sweep's replay contract (ISSUE 10):
//! a full served sweep — fold, bulk-lane fan-out, readout inversion,
//! extrapolation — is **bitwise** reproducible from its `sweep_seed`
//! alone. Engine seed, worker count and scheduling interleavings must
//! not matter, because every sub-run's executor seed derives from the
//! sweep seed through the repo-wide
//! `splitmix64(sweep_seed ^ splitmix64(k))` schedule; the schedule
//! itself is pinned against the factory's observed `(global, seed)`
//! pairs.

use proptest::prelude::*;
use qnat_core::executor::{splitmix64, ResilientExecutor, RetryPolicy};
use qnat_core::mitigate::ZneMethod;
use qnat_noise::backend::SimulatorBackend;
use qnat_serve::{submit_mitigated, sub_seed, MitigatedJob, MitigatedOutcome, ServeConfig, ServeEngine};
use qnat_compiler::folding::FoldStrategy;
use qnat_sim::circuit::Circuit;
use qnat_sim::gate::Gate;
use qnat_sim::measure::Confusion;
use std::sync::{Arc, Mutex};

fn sweep_circuit() -> Circuit {
    let mut c = Circuit::new(2);
    c.push(Gate::ry(0, 0.43));
    c.push(Gate::sqrt_h(1)); // root gate: exercises the two-gate inverse
    c.push(Gate::cx(0, 1));
    c.push(Gate::rz(1, -0.7));
    c
}

fn run_sweep(
    engine_seed: u64,
    workers: usize,
    job: &MitigatedJob,
    sweep_seed: u64,
) -> MitigatedOutcome {
    let engine = ServeEngine::new(
        ServeConfig {
            workers,
            seed: engine_seed,
            ..ServeConfig::default()
        },
        |_job, seed| {
            Ok(ResilientExecutor::new(
                Box::new(SimulatorBackend::new(seed)),
                RetryPolicy::default(),
            ))
        },
    );
    let sweep = submit_mitigated(&engine, job, sweep_seed).expect("valid sweep");
    let outcome = sweep.wait(&engine).expect("tickets live");
    engine.drain();
    outcome
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Two engines with different seeds and worker counts serve the
    /// same sweep bitwise identically — per-qubit mitigated
    /// expectations, raw baseline and every sub-run's measurements.
    #[test]
    fn sweep_replays_bitwise_across_engines(
        sweep_seed in 0u64..u64::MAX,
        engine_seeds in (0u64..u64::MAX, 0u64..u64::MAX),
        workers in (1usize..4, 1usize..4),
        shots in prop_oneof![Just(None), (64usize..256).prop_map(Some)],
        per_gate in (0u8..2).prop_map(|b| b == 1),
        richardson in (0u8..2).prop_map(|b| b == 1),
        with_readout in (0u8..2).prop_map(|b| b == 1),
    ) {
        let mut job = MitigatedJob::zne(sweep_circuit(), shots);
        job.strategy = if per_gate { FoldStrategy::PerGate } else { FoldStrategy::Global };
        job.method = if richardson { ZneMethod::Richardson } else { ZneMethod::Linear };
        if with_readout {
            let m: Confusion = [[0.98, 0.02], [0.03, 0.97]];
            job = job.with_readout(vec![m; 2]);
        }

        let first = run_sweep(engine_seeds.0, workers.0, &job, sweep_seed);
        let second = run_sweep(engine_seeds.1, workers.1, &job, sweep_seed);

        let a = first.mitigated.expect("aggregation succeeds");
        let b = second.mitigated.expect("aggregation succeeds");
        prop_assert_eq!(a.expectations, b.expectations);
        prop_assert_eq!(a.shots_used, b.shots_used);
        prop_assert_eq!(first.raw, second.raw);
        for (ra, rb) in first.runs.iter().zip(&second.runs) {
            prop_assert_eq!(ra.scale, rb.scale);
            prop_assert_eq!(&ra.outcome.result, &rb.outcome.result);
        }
    }

    /// The factory sees exactly the pinned `(global, seed)` schedule:
    /// sub-job `k` arrives as global job `k` with executor seed
    /// `splitmix64(sweep_seed ^ splitmix64(k))` — the same formula every
    /// other layer of the repo uses for per-job seeds.
    #[test]
    fn sub_job_seed_schedule_is_pinned(
        sweep_seed in 0u64..u64::MAX,
        workers in 1usize..4,
    ) {
        let seen: Arc<Mutex<Vec<(u64, u64)>>> = Arc::new(Mutex::new(Vec::new()));
        let record = Arc::clone(&seen);
        let engine = ServeEngine::new(
            ServeConfig { workers, seed: 1, ..ServeConfig::default() },
            move |job, seed| {
                record.lock().expect("recorder").push((job, seed));
                Ok(ResilientExecutor::new(
                    Box::new(SimulatorBackend::new(seed)),
                    RetryPolicy::default(),
                ))
            },
        );
        let job = MitigatedJob::zne(sweep_circuit(), None);
        let sweep = submit_mitigated(&engine, &job, sweep_seed).expect("valid sweep");
        sweep.wait(&engine).expect("tickets live");
        engine.drain();

        let mut calls = seen.lock().expect("recorder").clone();
        calls.sort_unstable();
        let expected: Vec<(u64, u64)> = (0..3u64)
            .map(|k| (k, splitmix64(sweep_seed ^ splitmix64(k))))
            .collect();
        prop_assert_eq!(&calls, &expected);
        for (k, seed) in calls {
            prop_assert_eq!(seed, sub_seed(sweep_seed, k));
        }
    }
}
