//! ISSUE 7 acceptance: repeated served inference through a shared
//! [`PlanCache`] — the second deployment of the same model on the same
//! device is all cache hits, and cache hits cannot change results
//! (bitwise-identical logits cached vs uncached).

use qnat_core::compile_cache::PlanCache;
use qnat_core::executor::RetryPolicy;
use qnat_core::infer::{infer, InferenceBackend, InferenceOptions};
use qnat_core::model::{Qnn, QnnConfig};
use qnat_noise::presets;
use qnat_serve::{DeployServing, ServingOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn model() -> Qnn {
    let cfg = QnnConfig::standard(16, 4, 2, 2);
    Qnn::for_device(cfg, &presets::santiago(), 7).expect("santiago fits the standard model")
}

fn features(n: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|k| (0..16).map(|j| ((k * 16 + j) as f64 * 0.017).cos()).collect())
        .collect()
}

fn serve_once(qnn: &Qnn, batch: &[Vec<f64>], cache: Option<Arc<PlanCache>>) -> Vec<Vec<f64>> {
    let serving = qnn
        .deploy_serving(
            &presets::santiago(),
            2,
            RetryPolicy::default(),
            None,
            &ServingOptions {
                workers: 2,
                seed: 23,
                plan_cache: cache,
                ..ServingOptions::default()
            },
        )
        .expect("serving deploy");
    let mut rng = StdRng::seed_from_u64(0);
    let out = infer(
        qnn,
        batch,
        &InferenceBackend::Serving(&serving),
        &InferenceOptions::default(),
        &mut rng,
    )
    .expect("served inference");
    serving.drain();
    out.logits
}

/// Repeated inference — the QuantumNAT workload — through one shared
/// cache: the first deployment compiles every block (all misses), the
/// second skips the compiler entirely (all hits), and both serve the
/// exact logits an uncached deployment serves.
#[test]
fn repeated_serving_hits_cache_without_changing_results() {
    let qnn = model();
    let batch = features(12);
    let n_blocks = qnn.blocks().len() as u64;

    let uncached = serve_once(&qnn, &batch, None);

    let cache = Arc::new(PlanCache::new());
    let first = serve_once(&qnn, &batch, Some(Arc::clone(&cache)));
    assert_eq!(cache.hits(), 0, "fresh cache cannot hit");
    assert_eq!(cache.misses(), n_blocks, "one compile per block");

    let second = serve_once(&qnn, &batch, Some(Arc::clone(&cache)));
    assert_eq!(cache.hits(), n_blocks, "second deploy must be all hits");
    assert_eq!(cache.misses(), n_blocks, "second deploy must not compile");

    // Cache hits may not change results: bitwise equality across the
    // cold deploy, the warm deploy, and the cache-free baseline.
    assert_eq!(first, uncached);
    assert_eq!(second, uncached);
}

/// A drifted calibration must recompile — serving the stale plan against
/// fresh calibration is exactly what the fingerprint key forbids.
#[test]
fn drifted_device_recompiles_through_serving() {
    let qnn = model();
    let batch = features(4);
    let cache = Arc::new(PlanCache::new());
    let n_blocks = qnn.blocks().len() as u64;

    serve_once(&qnn, &batch, Some(Arc::clone(&cache)));
    assert_eq!(cache.misses(), n_blocks);

    let drifted = presets::santiago().drifted(1.5, 1.0);
    let serving = qnn
        .deploy_serving(
            &drifted,
            2,
            RetryPolicy::default(),
            None,
            &ServingOptions {
                plan_cache: Some(Arc::clone(&cache)),
                ..ServingOptions::default()
            },
        )
        .expect("drifted deploy");
    serving.drain();
    assert_eq!(cache.misses(), 2 * n_blocks, "drift must invalidate");
}

/// The fusion plan cached inside each [`BlockPlan`] is the real thing:
/// cache hits share one plan (no per-deployment fusion pass), and fusing
/// a bound circuit through the cached plan is bitwise identical to a
/// fresh structural fuse of that circuit.
#[test]
fn cached_fusion_plan_is_shared_and_bitwise_exact() {
    use qnat_compiler::fusion::fuse;

    let qnn = model();
    let device = presets::santiago();
    let cache = Arc::new(PlanCache::new());
    let cold = qnn
        .route_plan_cached(&device, 2, &cache)
        .expect("cold route");
    let warm = qnn
        .route_plan_cached(&device, 2, &cache)
        .expect("warm route");
    for (bi, (a, b)) in cold.iter().zip(&warm).enumerate() {
        assert!(
            Arc::ptr_eq(&a.fusion, &b.fusion),
            "block {bi}: cache hit must share the fusion plan, not rebuild it"
        );
        // Bind the block's template at a representative parameter point
        // and check plan-based fusion against the one-shot path.
        let n_params = qnn.blocks()[bi].n_enc + qnn.blocks()[bi].n_train;
        let params: Vec<f64> = (0..n_params).map(|j| 0.1 + 0.03 * j as f64).collect();
        let bound = a.lowered.bind(&params);
        assert_eq!(
            a.fusion.fuse_bound(&bound),
            fuse(&bound),
            "block {bi}: cached plan must fuse bitwise identically"
        );
    }
    // Uncached routing builds an equivalent (but unshared) plan.
    let fresh = qnn.route_plan(&device, 2).expect("uncached route");
    for (a, b) in cold.iter().zip(&fresh) {
        assert_eq!(*a.fusion, *b.fusion);
        assert!(!Arc::ptr_eq(&a.fusion, &b.fusion));
    }
}
