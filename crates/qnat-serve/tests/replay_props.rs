//! Property tests for the serving layer's replay contract: a served
//! workload — whatever lanes the jobs ride on, whatever order and through
//! whichever of `poll`/`wait` the results are consumed — is bitwise
//! identical, per ticket, to one [`BatchExecutor::execute`] of the same
//! jobs, and the ticket-order-merged reports match the batch's merged
//! report.

use proptest::prelude::*;
use qnat_core::batch::{BatchExecutor, BatchJob};
use qnat_core::executor::{ExecutionReport, ResilientExecutor, RetryPolicy, VirtualSleeper};
use qnat_noise::backend::{BackendError, SimulatorBackend};
use qnat_noise::fault::{FaultSpec, FaultyBackend};
use qnat_serve::{JobOutcome, Lane, Poll, ServeConfig, ServeEngine};
use qnat_sim::circuit::Circuit;
use qnat_sim::gate::Gate;

fn jobs(n: usize, shots: Option<usize>) -> Vec<BatchJob> {
    (0..n)
        .map(|k| {
            let mut c = Circuit::new(2);
            c.push(Gate::ry(0, 0.17 * k as f64 + 0.03));
            c.push(Gate::cx(0, 1));
            BatchJob { circuit: c, shots }
        })
        .collect()
}

fn factory(
    fault_rate: f64,
) -> impl Fn(u64, u64) -> Result<ResilientExecutor, BackendError> + Send + Sync + Clone + 'static {
    move |_job: u64, seed: u64| {
        Ok(ResilientExecutor::with_fallback(
            Box::new(FaultyBackend::new(
                SimulatorBackend::new(seed),
                FaultSpec::transient(fault_rate, seed),
            )),
            Box::new(SimulatorBackend::new(seed ^ 0x5eed)),
            RetryPolicy {
                jitter_seed: seed,
                ..RetryPolicy::default()
            },
        )
        .with_sleeper(Box::new(VirtualSleeper::default())))
    }
}

/// Spin on `poll` until the ticket resolves — exercises the non-blocking
/// path, including the Queued/Running states, without ever blocking.
fn poll_spin(engine: &ServeEngine, ticket: u64) -> JobOutcome {
    loop {
        match engine.poll(ticket) {
            Poll::Ready(outcome) => return outcome,
            Poll::Queued | Poll::Running => std::thread::yield_now(),
            Poll::Unknown => panic!("ticket {ticket} vanished before consumption"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The central guarantee: per-ticket serve results equal per-index
    /// batch results under any lane assignment and any consumption
    /// interleaving.
    #[test]
    fn served_workload_replays_as_one_batch(
        seed in 0u64..u64::MAX,
        fault_rate in 0.0f64..0.7,
        workers in 1usize..5,
        shots in prop_oneof![Just(None), (32usize..256).prop_map(Some)],
        lanes in prop::collection::vec((0u8..2).prop_map(|b| b == 1), 1..24),
        consume_order_seed in 0u64..u64::MAX,
        use_wait in prop::collection::vec((0u8..2).prop_map(|b| b == 1), 24),
    ) {
        let n = lanes.len();
        let jobs = jobs(n, shots);

        // Ground truth: one batch execution of the same jobs.
        let batch = BatchExecutor::new(workers, seed, factory(fault_rate)).execute(&jobs);

        let engine = ServeEngine::new(
            ServeConfig { workers, seed, ..ServeConfig::default() },
            factory(fault_rate),
        );
        let stream = engine.subscribe();

        // Submission order defines tickets: job k gets ticket k, on an
        // arbitrary lane.
        let mut tickets = Vec::with_capacity(n);
        for (k, &interactive) in lanes.iter().enumerate() {
            let lane = if interactive { Lane::Interactive } else { Lane::Bulk };
            let t = engine.submit(jobs[k].clone(), lane)
                .expect("blocking lanes accept every submission");
            prop_assert_eq!(t, k as u64, "tickets are dense from zero");
            tickets.push(t);
        }

        // Consume in a derived pseudo-random order, each ticket through
        // either wait (blocking) or a poll spin (non-blocking).
        let mut order: Vec<usize> = (0..n).collect();
        let mut x = consume_order_seed | 1;
        for i in (1..n).rev() {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            order.swap(i, (x >> 33) as usize % (i + 1));
        }

        let mut outcomes: Vec<Option<JobOutcome>> = vec![None; n];
        for &i in &order {
            let t = tickets[i];
            let outcome = if use_wait[i] {
                engine.wait(t).expect("ticket is never discarded")
            } else {
                poll_spin(&engine, t)
            };
            outcomes[i] = Some(outcome);
        }

        // Per-ticket bitwise equality with the batch, and the ticket-order
        // report merge matches the batch's job-index-order merge.
        let mut merged = ExecutionReport::default();
        for (k, outcome) in outcomes.into_iter().enumerate() {
            let outcome = outcome.expect("every ticket was consumed");
            prop_assert_eq!(&outcome.result, &batch.results[k],
                "ticket {} diverges from batch job {}", k, k);
            merged.merge(&outcome.report);
        }
        prop_assert_eq!(&merged, &batch.report);

        // The subscription streamed every completion exactly once, with
        // the same per-ticket results.
        let stats = engine.drain();
        prop_assert_eq!(stats.submitted, n as u64);
        prop_assert_eq!(stats.completed, n as u64);
        let mut streamed: Vec<(u64, Result<_, _>)> = stream.iter().collect();
        streamed.sort_by_key(|(t, _)| *t);
        prop_assert_eq!(streamed.len(), n);
        for (k, (t, result)) in streamed.into_iter().enumerate() {
            prop_assert_eq!(t, k as u64);
            prop_assert_eq!(&result, &batch.results[k]);
        }
    }

    /// Ticket seeds depend only on (engine seed, ticket) — not on worker
    /// count, lanes, or anything observed at runtime — and match the batch
    /// layer's job seeds exactly.
    #[test]
    fn ticket_seeds_match_batch_job_seeds(
        seed in 0u64..u64::MAX,
        n in 2usize..32,
    ) {
        let engine = ServeEngine::new(
            ServeConfig { workers: 1, seed, ..ServeConfig::default() },
            factory(0.0),
        );
        let pool = BatchExecutor::new(1, seed, factory(0.0));
        let mut seen = Vec::with_capacity(n);
        for t in 0..n as u64 {
            prop_assert_eq!(engine.job_seed(t), pool.job_seed(t));
            seen.push(engine.job_seed(t));
        }
        seen.sort_unstable();
        seen.dedup();
        prop_assert_eq!(seen.len(), n, "per-ticket seeds must not collide");
    }
}
