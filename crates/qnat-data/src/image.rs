//! Synthetic image generation and the paper's exact preprocessing pipeline.
//!
//! Real MNIST/Fashion/CIFAR files are not available offline, so each class
//! is a *smooth random prototype field* (a seeded mixture of Gaussian
//! blobs); samples are drawn by jittering the prototype position and adding
//! pixel noise. What the experiments measure — robustness deltas between
//! noise-free and noisy inference and the ordering of the ablation arms —
//! depends on the moderate class separability of the downsampled features,
//! not on actual digit shapes. Preprocessing follows §4.1 exactly:
//! center-crop 28×28 → 24×24, average-pool to 4×4 (2/4-class) or 6×6
//! (10-class); CIFAR is "converted to grayscale", cropped to 28×28 and
//! pooled to 4×4.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A square grayscale image with pixels in `[0, 1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Image {
    size: usize,
    pixels: Vec<f64>,
}

impl Image {
    /// Creates an image from raw pixels.
    ///
    /// # Panics
    ///
    /// Panics if `pixels.len() != size²`.
    pub fn new(size: usize, pixels: Vec<f64>) -> Self {
        assert_eq!(pixels.len(), size * size, "pixel count mismatch");
        Image { size, pixels }
    }

    /// Side length in pixels.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Pixel at `(row, col)`.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        self.pixels[row * self.size + col]
    }

    /// Flat pixel data (row-major).
    pub fn pixels(&self) -> &[f64] {
        &self.pixels
    }

    /// Center-crops to `out` × `out`.
    ///
    /// # Panics
    ///
    /// Panics if `out > size`.
    pub fn center_crop(&self, out: usize) -> Image {
        assert!(out <= self.size, "crop larger than image");
        let off = (self.size - out) / 2;
        let mut pixels = Vec::with_capacity(out * out);
        for r in 0..out {
            for c in 0..out {
                pixels.push(self.get(r + off, c + off));
            }
        }
        Image::new(out, pixels)
    }

    /// Average-pools to `out` × `out` (the paper's down-sampling).
    ///
    /// # Panics
    ///
    /// Panics if `size` is not a multiple of `out`.
    pub fn avg_pool(&self, out: usize) -> Image {
        assert_eq!(self.size % out, 0, "pool size must divide image size");
        let k = self.size / out;
        let mut pixels = Vec::with_capacity(out * out);
        for r in 0..out {
            for c in 0..out {
                let mut acc = 0.0;
                for i in 0..k {
                    for j in 0..k {
                        acc += self.get(r * k + i, c * k + j);
                    }
                }
                pixels.push(acc / (k * k) as f64);
            }
        }
        Image::new(out, pixels)
    }
}

/// A Gaussian blob of a class prototype.
#[derive(Debug, Clone, Copy)]
struct Blob {
    row: f64,
    col: f64,
    sigma: f64,
    amp: f64,
}

/// A per-class generative prototype: a mixture of Gaussian blobs.
#[derive(Debug, Clone)]
pub struct ClassPrototype {
    blobs: Vec<Blob>,
}

/// Style knobs distinguishing the synthetic corpora.
///
/// Every class of a corpus shares `n_shared` *common* blobs (the "all
/// digits are pen strokes on a dark background" structure) and differs only
/// by `n_class` class-specific blobs of amplitude `class_amp` — this keeps
/// the class margins moderate, like the paper's downsampled 4×4 images,
/// instead of trivially separable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImageStyle {
    /// Blobs shared by all classes of the corpus.
    pub n_shared: usize,
    /// Class-specific blobs.
    pub n_class: usize,
    /// Amplitude of the class-specific blobs (shared blobs have ~1).
    pub class_amp: f64,
    /// Blob σ range (pixels).
    pub sigma: (f64, f64),
    /// Per-sample positional jitter (± pixels).
    pub jitter: f64,
    /// Per-pixel additive Gaussian noise σ.
    pub pixel_noise: f64,
}

impl ImageStyle {
    /// MNIST-like: compact strokes, modest class deviations.
    pub fn mnist() -> Self {
        ImageStyle {
            n_shared: 3,
            n_class: 4,
            class_amp: 0.5,
            sigma: (1.8, 3.5),
            jitter: 2.2,
            pixel_noise: 0.12,
        }
    }

    /// Fashion-MNIST-like: broader garment-ish masses, closer classes.
    pub fn fashion() -> Self {
        ImageStyle {
            n_shared: 4,
            n_class: 4,
            class_amp: 0.42,
            sigma: (2.5, 5.5),
            jitter: 2.0,
            pixel_noise: 0.13,
        }
    }

    /// Grayscale-CIFAR-like: diffuse, noisy, weakly separable.
    pub fn cifar() -> Self {
        ImageStyle {
            n_shared: 6,
            n_class: 4,
            class_amp: 0.26,
            sigma: (3.0, 7.0),
            jitter: 2.8,
            pixel_noise: 0.18,
        }
    }
}

impl ClassPrototype {
    /// Deterministically builds the prototype of `class` for a corpus seed:
    /// shared corpus blobs plus weaker class-specific ones.
    pub fn generate(corpus_seed: u64, class: usize, style: &ImageStyle, size: usize) -> Self {
        let mut shared_rng =
            StdRng::seed_from_u64(corpus_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut class_rng = StdRng::seed_from_u64(
            corpus_seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(1 + class as u64),
        );
        let mut blobs: Vec<Blob> = (0..style.n_shared)
            .map(|_| Blob {
                row: shared_rng.gen_range(0.2..0.8) * size as f64,
                col: shared_rng.gen_range(0.2..0.8) * size as f64,
                sigma: shared_rng.gen_range(style.sigma.0..style.sigma.1),
                amp: shared_rng.gen_range(0.5..1.0),
            })
            .collect();
        blobs.extend((0..style.n_class).map(|_| Blob {
            row: class_rng.gen_range(0.15..0.85) * size as f64,
            col: class_rng.gen_range(0.15..0.85) * size as f64,
            sigma: class_rng.gen_range(style.sigma.0..style.sigma.1),
            amp: class_rng.gen_range(0.5..1.0) * style.class_amp,
        }));
        ClassPrototype { blobs }
    }

    /// Renders one sample of this class: jitter the blob positions, add
    /// pixel noise, clip to `[0, 1]`.
    pub fn sample<R: Rng>(&self, style: &ImageStyle, size: usize, rng: &mut R) -> Image {
        let dr: f64 = rng.gen_range(-style.jitter..=style.jitter);
        let dc: f64 = rng.gen_range(-style.jitter..=style.jitter);
        let mut pixels = vec![0.0; size * size];
        for blob in &self.blobs {
            let (br, bc) = (blob.row + dr, blob.col + dc);
            let inv = 1.0 / (2.0 * blob.sigma * blob.sigma);
            for r in 0..size {
                for c in 0..size {
                    let d2 = (r as f64 - br).powi(2) + (c as f64 - bc).powi(2);
                    pixels[r * size + c] += blob.amp * (-d2 * inv).exp();
                }
            }
        }
        for p in &mut pixels {
            // Box-Muller Gaussian pixel noise.
            let u1: f64 = rng.gen_range(1e-12..1.0);
            let u2: f64 = rng.gen();
            let n = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            *p = (*p + n * style.pixel_noise).clamp(0.0, 1.0);
        }
        Image::new(size, pixels)
    }
}

/// Renders a sample of `class` and applies the paper's preprocessing:
/// 28×28 → center-crop `crop` → average-pool to `out`. Returns the flat
/// feature vector (length `out²`).
pub fn synth_features<R: Rng>(
    corpus_seed: u64,
    class: usize,
    style: &ImageStyle,
    crop: usize,
    out: usize,
    rng: &mut R,
) -> Vec<f64> {
    let proto = ClassPrototype::generate(corpus_seed, class, style, 28);
    let img = proto.sample(style, 28, rng);
    img.center_crop(crop).avg_pool(out).pixels().to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crop_and_pool_shapes() {
        let img = Image::new(28, vec![0.5; 28 * 28]);
        let c = img.center_crop(24);
        assert_eq!(c.size(), 24);
        let p = c.avg_pool(4);
        assert_eq!(p.size(), 4);
        assert!((p.get(0, 0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn avg_pool_averages() {
        let mut pixels = vec![0.0; 16];
        pixels[0] = 1.0; // one bright pixel in the 2×2 top-left block
        let img = Image::new(4, pixels);
        let p = img.avg_pool(2);
        assert!((p.get(0, 0) - 0.25).abs() < 1e-12);
        assert_eq!(p.get(1, 1), 0.0);
    }

    #[test]
    fn prototypes_are_deterministic() {
        let s = ImageStyle::mnist();
        let mut r1 = StdRng::seed_from_u64(7);
        let mut r2 = StdRng::seed_from_u64(7);
        let a = synth_features(1, 0, &s, 24, 4, &mut r1);
        let b = synth_features(1, 0, &s, 24, 4, &mut r2);
        assert_eq!(a, b);
    }

    #[test]
    fn classes_are_distinguishable() {
        // Mean feature vectors of two classes should differ much more than
        // within-class variation.
        let s = ImageStyle::mnist();
        let mut rng = StdRng::seed_from_u64(3);
        let n = 40;
        let mean = |class: usize, rng: &mut StdRng| -> Vec<f64> {
            let mut acc = vec![0.0; 16];
            for _ in 0..n {
                let f = synth_features(1, class, &s, 24, 4, rng);
                for (a, v) in acc.iter_mut().zip(&f) {
                    *a += v;
                }
            }
            acc.into_iter().map(|v| v / n as f64).collect()
        };
        let m0 = mean(0, &mut rng);
        let m1 = mean(1, &mut rng);
        let dist: f64 = m0
            .iter()
            .zip(&m1)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        assert!(dist > 0.1, "class means too close: {dist}");
    }

    #[test]
    fn pixels_stay_in_unit_range() {
        let s = ImageStyle::cifar();
        let mut rng = StdRng::seed_from_u64(9);
        for class in 0..2 {
            let f = synth_features(5, class, &s, 28, 4, &mut rng);
            assert!(f.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    #[should_panic(expected = "pool size must divide")]
    fn bad_pool_panics() {
        Image::new(10, vec![0.0; 100]).avg_pool(4);
    }
}
