//! Task datasets with the paper's splits.
//!
//! Eight classification tasks (§4.1): MNIST 10/4/2-class, Fashion 10/4/2,
//! CIFAR-2 and Vowel-4. Image tasks synthesize per-class prototypes and
//! follow the crop/pool pipeline; Vowel-4 synthesizes 990 samples split
//! 6:1:3 with a from-scratch PCA down to 10 dimensions. All features land
//! in `[0, 1]` and are later scaled to rotation angles by the encoder.

use crate::image::{synth_features, ImageStyle};
use crate::pca::Pca;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// One labeled sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Feature vector (values in `[0, 1]`).
    pub features: Vec<f64>,
    /// Class label in `0..n_classes`.
    pub label: usize,
}

/// A train/validation/test split.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// Task name (e.g. `"mnist-4"`).
    pub name: String,
    /// Number of classes.
    pub n_classes: usize,
    /// Feature dimension.
    pub n_features: usize,
    /// Training samples.
    pub train: Vec<Sample>,
    /// Validation samples.
    pub valid: Vec<Sample>,
    /// Test samples.
    pub test: Vec<Sample>,
}

/// The eight benchmark tasks of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Task {
    /// MNIST digits 0–3, 4×4 features.
    Mnist4,
    /// MNIST digits 3 vs 6, 4×4 features.
    Mnist2,
    /// MNIST 10-class, 6×6 features.
    Mnist10,
    /// Fashion 4-class (t-shirt/trouser/pullover/dress), 4×4 features.
    Fashion4,
    /// Fashion 2-class (dress vs shirt), 4×4 features.
    Fashion2,
    /// Fashion 10-class, 6×6 features.
    Fashion10,
    /// CIFAR 2-class (frog vs ship), grayscale 4×4 features.
    Cifar2,
    /// Vowel 4-class, PCA to 10 features.
    Vowel4,
}

impl Task {
    /// All tasks, in the paper's table order.
    pub fn all() -> [Task; 8] {
        [
            Task::Mnist4,
            Task::Fashion4,
            Task::Vowel4,
            Task::Mnist2,
            Task::Fashion2,
            Task::Cifar2,
            Task::Mnist10,
            Task::Fashion10,
        ]
    }

    /// Task name.
    pub fn name(&self) -> &'static str {
        match self {
            Task::Mnist4 => "mnist-4",
            Task::Mnist2 => "mnist-2",
            Task::Mnist10 => "mnist-10",
            Task::Fashion4 => "fashion-4",
            Task::Fashion2 => "fashion-2",
            Task::Fashion10 => "fashion-10",
            Task::Cifar2 => "cifar-2",
            Task::Vowel4 => "vowel-4",
        }
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        match self {
            Task::Mnist10 | Task::Fashion10 => 10,
            Task::Mnist4 | Task::Fashion4 | Task::Vowel4 => 4,
            _ => 2,
        }
    }

    /// Feature dimension after preprocessing (16, 36 or 10).
    pub fn n_features(&self) -> usize {
        match self {
            Task::Mnist10 | Task::Fashion10 => 36,
            Task::Vowel4 => 10,
            _ => 16,
        }
    }

    fn style(&self) -> Option<ImageStyle> {
        match self {
            Task::Mnist4 | Task::Mnist2 | Task::Mnist10 => Some(ImageStyle::mnist()),
            Task::Fashion4 | Task::Fashion2 | Task::Fashion10 => Some(ImageStyle::fashion()),
            Task::Cifar2 => Some(ImageStyle::cifar()),
            Task::Vowel4 => None,
        }
    }

    /// Corpus seed: distinct prototype universes per corpus.
    fn corpus_seed(&self) -> u64 {
        match self {
            Task::Mnist4 | Task::Mnist2 | Task::Mnist10 => 101,
            Task::Fashion4 | Task::Fashion2 | Task::Fashion10 => 202,
            Task::Cifar2 => 303,
            Task::Vowel4 => 404,
        }
    }

    /// Which corpus classes this task selects (paper: MNIST-2 is digits
    /// {3, 6}, Fashion-2 is {dress, shirt} = {3, 6} in Fashion-MNIST label
    /// order, CIFAR-2 is {frog, ship} = {6, 8}).
    fn class_ids(&self) -> Vec<usize> {
        match self {
            Task::Mnist4 | Task::Fashion4 => vec![0, 1, 2, 3],
            Task::Mnist2 | Task::Fashion2 => vec![3, 6],
            Task::Cifar2 => vec![6, 8],
            Task::Mnist10 | Task::Fashion10 => (0..10).collect(),
            Task::Vowel4 => vec![0, 1, 2, 3],
        }
    }

    /// `(crop, pool)` of the preprocessing pipeline.
    fn crop_pool(&self) -> (usize, usize) {
        match self {
            Task::Mnist10 | Task::Fashion10 => (24, 6),
            Task::Cifar2 => (28, 4),
            _ => (24, 4),
        }
    }
}

/// Dataset sizes and seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskConfig {
    /// Training-set size.
    pub n_train: usize,
    /// Validation-set size (paper: 5% of train split).
    pub n_valid: usize,
    /// Test-set size (paper: first 300 test images).
    pub n_test: usize,
    /// RNG seed for sample generation and splits.
    pub seed: u64,
}

impl Default for TaskConfig {
    fn default() -> Self {
        TaskConfig {
            n_train: 400,
            n_valid: 100,
            n_test: 300,
            seed: 7,
        }
    }
}

impl TaskConfig {
    /// A reduced configuration for fast tests and benches.
    pub fn small(seed: u64) -> Self {
        TaskConfig {
            n_train: 96,
            n_valid: 32,
            n_test: 64,
            seed,
        }
    }
}

fn image_split(task: Task, n: usize, rng: &mut StdRng) -> Vec<Sample> {
    let style = task.style().expect("image task");
    let classes = task.class_ids();
    let (crop, pool) = task.crop_pool();
    (0..n)
        .map(|i| {
            let label = i % classes.len();
            let features = synth_features(
                task.corpus_seed(),
                classes[label],
                &style,
                crop,
                pool,
                rng,
            );
            Sample { features, label }
        })
        .collect()
}

fn build_vowel(config: &TaskConfig) -> Dataset {
    // 990 samples, 4 classes, raw 20-dimensional formant-like features:
    // class-dependent Gaussians with shared covariance structure.
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xBEEF);
    let n_total = 990;
    let raw_dim = 20;
    let mut proto_rng = StdRng::seed_from_u64(404);
    let protos: Vec<Vec<f64>> = (0..4)
        .map(|_| {
            (0..raw_dim)
                .map(|_| proto_rng.gen_range(-1.0..1.0))
                .collect()
        })
        .collect();
    let mut samples: Vec<Sample> = (0..n_total)
        .map(|i| {
            let label = i % 4;
            let features = protos[label]
                .iter()
                .map(|&m| {
                    let u1: f64 = rng.gen_range(1e-12..1.0);
                    let u2: f64 = rng.gen();
                    let n =
                        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                    m + 0.55 * n
                })
                .collect();
            Sample { features, label }
        })
        .collect();
    samples.shuffle(&mut rng);
    // Paper split: train:valid:test = 6:1:3.
    let n_train = n_total * 6 / 10;
    let n_valid = n_total / 10;
    let train_raw = &samples[..n_train];
    // Fit PCA on the training split only.
    let pca = Pca::fit(
        &train_raw.iter().map(|s| s.features.clone()).collect::<Vec<_>>(),
        10,
    );
    // Rescale each PCA dimension to [0, 1] using train statistics.
    let projected: Vec<Vec<f64>> = samples.iter().map(|s| pca.transform(&s.features)).collect();
    let mut lo = [f64::INFINITY; 10];
    let mut hi = [f64::NEG_INFINITY; 10];
    for p in projected.iter().take(n_train) {
        for (d, &v) in p.iter().enumerate() {
            lo[d] = lo[d].min(v);
            hi[d] = hi[d].max(v);
        }
    }
    let rescaled: Vec<Sample> = samples
        .iter()
        .zip(&projected)
        .map(|(s, p)| Sample {
            features: p
                .iter()
                .enumerate()
                .map(|(d, &v)| ((v - lo[d]) / (hi[d] - lo[d]).max(1e-12)).clamp(0.0, 1.0))
                .collect(),
            label: s.label,
        })
        .collect();
    Dataset {
        name: "vowel-4".into(),
        n_classes: 4,
        n_features: 10,
        train: rescaled[..n_train].to_vec(),
        valid: rescaled[n_train..n_train + n_valid].to_vec(),
        test: rescaled[n_train + n_valid..].to_vec(),
    }
}

/// Builds a task dataset.
///
/// # Examples
///
/// ```
/// use qnat_data::dataset::{build, Task, TaskConfig};
/// let ds = build(Task::Mnist4, &TaskConfig::small(1));
/// assert_eq!(ds.n_classes, 4);
/// assert_eq!(ds.n_features, 16);
/// assert_eq!(ds.train.len(), 96);
/// ```
pub fn build(task: Task, config: &TaskConfig) -> Dataset {
    if task == Task::Vowel4 {
        return build_vowel(config);
    }
    let mut rng = StdRng::seed_from_u64(config.seed);
    Dataset {
        name: task.name().into(),
        n_classes: task.n_classes(),
        n_features: task.n_features(),
        train: image_split(task, config.n_train, &mut rng),
        valid: image_split(task, config.n_valid, &mut rng),
        test: image_split(task, config.n_test, &mut rng),
    }
}

/// Shuffles sample indices and yields mini-batches of at most `batch_size`.
pub fn batch_indices<R: Rng>(n: usize, batch_size: usize, rng: &mut R) -> Vec<Vec<usize>> {
    assert!(batch_size > 0, "batch size must be positive");
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(rng);
    idx.chunks(batch_size).map(|c| c.to_vec()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_tasks_build_with_declared_shapes() {
        let cfg = TaskConfig::small(3);
        for task in Task::all() {
            let ds = build(task, &cfg);
            assert_eq!(ds.n_classes, task.n_classes(), "{}", task.name());
            assert_eq!(ds.n_features, task.n_features(), "{}", task.name());
            for s in ds.train.iter().chain(&ds.valid).chain(&ds.test) {
                assert_eq!(s.features.len(), ds.n_features);
                assert!(s.label < ds.n_classes);
                assert!(s.features.iter().all(|&v| (0.0..=1.0).contains(&v)));
            }
        }
    }

    #[test]
    fn builds_are_deterministic() {
        let cfg = TaskConfig::small(5);
        assert_eq!(build(Task::Fashion2, &cfg), build(Task::Fashion2, &cfg));
    }

    #[test]
    fn different_seeds_differ() {
        let a = build(Task::Mnist4, &TaskConfig::small(1));
        let b = build(Task::Mnist4, &TaskConfig::small(2));
        assert_ne!(a.train[0].features, b.train[0].features);
    }

    #[test]
    fn vowel_split_is_6_1_3() {
        let ds = build(Task::Vowel4, &TaskConfig::default());
        assert_eq!(ds.train.len(), 594);
        assert_eq!(ds.valid.len(), 99);
        assert_eq!(ds.test.len(), 297);
        assert_eq!(ds.n_features, 10);
    }

    #[test]
    fn labels_are_balanced() {
        let ds = build(Task::Mnist4, &TaskConfig::small(4));
        let mut counts = [0usize; 4];
        for s in &ds.train {
            counts[s.label] += 1;
        }
        assert_eq!(counts, [24, 24, 24, 24]);
    }

    #[test]
    fn batch_indices_cover_everything() {
        let mut rng = StdRng::seed_from_u64(1);
        let batches = batch_indices(10, 4, &mut rng);
        assert_eq!(batches.len(), 3);
        let mut all: Vec<usize> = batches.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn two_class_tasks_use_distinct_prototypes() {
        // MNIST-2 (classes 3, 6) must not duplicate MNIST-4's classes 0/1.
        let m2 = build(Task::Mnist2, &TaskConfig::small(1));
        let m4 = build(Task::Mnist4, &TaskConfig::small(1));
        assert_ne!(m2.train[0].features, m4.train[0].features);
    }
}
