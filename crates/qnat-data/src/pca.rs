//! Principal component analysis, implemented from scratch.
//!
//! Used for the Vowel-4 task: the paper performs "feature PCA and takes the
//! 10 most significant dimensions" (§4.1). Eigen-decomposition of the
//! (symmetric) covariance matrix is done with the cyclic Jacobi rotation
//! method, which is exact enough and dependency-free for the ≤ 32
//! dimensions we need.

/// A fitted PCA transform.
#[derive(Debug, Clone, PartialEq)]
pub struct Pca {
    mean: Vec<f64>,
    /// Row `k` is the k-th principal axis (unit vector), sorted by
    /// decreasing eigenvalue.
    components: Vec<Vec<f64>>,
    eigenvalues: Vec<f64>,
}

/// Jacobi eigen-decomposition of a symmetric matrix (row-major, `n×n`).
/// Returns `(eigenvalues, eigenvectors)` with eigenvector `k` stored as
/// column `k` of the returned matrix, unsorted.
fn jacobi_eigen(mut a: Vec<Vec<f64>>) -> (Vec<f64>, Vec<Vec<f64>>) {
    let n = a.len();
    let mut v = vec![vec![0.0; n]; n];
    for (i, row) in v.iter_mut().enumerate() {
        row[i] = 1.0;
    }
    for _sweep in 0..100 {
        let mut off = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off += a[i][j] * a[i][j];
            }
        }
        if off < 1e-22 {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                if a[p][q].abs() < 1e-15 {
                    continue;
                }
                let theta = (a[q][q] - a[p][p]) / (2.0 * a[p][q]);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                for k in 0..n {
                    let (akp, akq) = (a[k][p], a[k][q]);
                    a[k][p] = c * akp - s * akq;
                    a[k][q] = s * akp + c * akq;
                }
                for k in 0..n {
                    let (apk, aqk) = (a[p][k], a[q][k]);
                    a[p][k] = c * apk - s * aqk;
                    a[q][k] = s * apk + c * aqk;
                }
                for k in 0..n {
                    let (vkp, vkq) = (v[k][p], v[k][q]);
                    v[k][p] = c * vkp - s * vkq;
                    v[k][q] = s * vkp + c * vkq;
                }
            }
        }
    }
    let eig = (0..n).map(|i| a[i][i]).collect();
    (eig, v)
}

impl Pca {
    /// Fits PCA on row-major samples, keeping `k` components.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or `k` exceeds the feature dimension.
    pub fn fit(samples: &[Vec<f64>], k: usize) -> Pca {
        assert!(!samples.is_empty(), "need at least one sample");
        let d = samples[0].len();
        assert!(k <= d, "cannot keep {k} of {d} dimensions");
        let n = samples.len() as f64;
        let mut mean = vec![0.0; d];
        for s in samples {
            assert_eq!(s.len(), d, "ragged samples");
            for (m, x) in mean.iter_mut().zip(s) {
                *m += x;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut cov = vec![vec![0.0; d]; d];
        for s in samples {
            for i in 0..d {
                let di = s[i] - mean[i];
                for j in i..d {
                    cov[i][j] += di * (s[j] - mean[j]);
                }
            }
        }
        for i in 0..d {
            for j in i..d {
                cov[i][j] /= n;
                cov[j][i] = cov[i][j];
            }
        }
        let (eig, vecs) = jacobi_eigen(cov);
        let mut order: Vec<usize> = (0..d).collect();
        order.sort_by(|&a, &b| eig[b].total_cmp(&eig[a]));
        let components = order[..k]
            .iter()
            .map(|&c| (0..d).map(|r| vecs[r][c]).collect())
            .collect();
        let eigenvalues = order[..k].iter().map(|&c| eig[c]).collect();
        Pca {
            mean,
            components,
            eigenvalues,
        }
    }

    /// Number of kept components.
    pub fn n_components(&self) -> usize {
        self.components.len()
    }

    /// Eigenvalues of the kept components, descending.
    pub fn eigenvalues(&self) -> &[f64] {
        &self.eigenvalues
    }

    /// Projects one sample onto the kept principal axes.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn transform(&self, sample: &[f64]) -> Vec<f64> {
        assert_eq!(sample.len(), self.mean.len(), "dimension mismatch");
        self.components
            .iter()
            .map(|axis| {
                axis.iter()
                    .zip(sample.iter().zip(&self.mean))
                    .map(|(a, (x, m))| a * (x - m))
                    .sum()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn recovers_dominant_direction() {
        // Points along (1, 1)/√2 with small orthogonal noise.
        let mut rng = StdRng::seed_from_u64(1);
        let samples: Vec<Vec<f64>> = (0..500)
            .map(|_| {
                let t: f64 = rng.gen_range(-2.0..2.0);
                let n: f64 = rng.gen_range(-0.05..0.05);
                vec![t + n, t - n]
            })
            .collect();
        let pca = Pca::fit(&samples, 2);
        let axis = &pca.transform(&[1.0, 1.0]);
        // First component captures almost everything.
        assert!(pca.eigenvalues()[0] > 20.0 * pca.eigenvalues()[1]);
        assert!(axis[0].abs() > 10.0 * axis[1].abs());
    }

    #[test]
    fn components_are_orthonormal() {
        let mut rng = StdRng::seed_from_u64(2);
        let samples: Vec<Vec<f64>> = (0..200)
            .map(|_| (0..6).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect();
        let pca = Pca::fit(&samples, 6);
        for i in 0..6 {
            for j in 0..6 {
                let dot: f64 = pca.components[i]
                    .iter()
                    .zip(&pca.components[j])
                    .map(|(a, b)| a * b)
                    .sum();
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((dot - want).abs() < 1e-8, "({i},{j}) dot = {dot}");
            }
        }
    }

    #[test]
    fn eigenvalues_descend() {
        let mut rng = StdRng::seed_from_u64(3);
        let samples: Vec<Vec<f64>> = (0..300)
            .map(|_| {
                (0..5)
                    .map(|d| rng.gen_range(-1.0..1.0) * (5 - d) as f64)
                    .collect()
            })
            .collect();
        let pca = Pca::fit(&samples, 5);
        for w in pca.eigenvalues().windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn transform_centers_data() {
        let samples = vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]];
        let pca = Pca::fit(&samples, 1);
        // Mean sample maps to 0.
        let t = pca.transform(&[3.0, 4.0]);
        assert!(t[0].abs() < 1e-10);
    }

    #[test]
    fn total_variance_preserved() {
        let mut rng = StdRng::seed_from_u64(4);
        let samples: Vec<Vec<f64>> = (0..400)
            .map(|_| (0..4).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect();
        let d = 4;
        let pca = Pca::fit(&samples, d);
        let mut total_var = 0.0;
        let n = samples.len() as f64;
        let mut mean = vec![0.0; d];
        for s in &samples {
            for (m, x) in mean.iter_mut().zip(s) {
                *m += x / n;
            }
        }
        for s in &samples {
            for j in 0..d {
                total_var += (s[j] - mean[j]).powi(2) / n;
            }
        }
        let eig_sum: f64 = pca.eigenvalues().iter().sum();
        assert!((total_var - eig_sum).abs() < 1e-8);
    }
}
