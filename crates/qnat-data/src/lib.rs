//! # qnat-data — synthetic dataset substrate for QuantumNAT
//!
//! Stand-ins for the paper's eight benchmark tasks (MNIST 10/4/2, Fashion
//! 10/4/2, CIFAR-2, Vowel-4) built from seeded per-class generative
//! prototypes, with the exact preprocessing pipeline of §4.1: center-crop,
//! average-pool down-sampling and (for Vowel) a from-scratch PCA to the 10
//! most significant dimensions.
//!
//! ## Example
//!
//! ```
//! use qnat_data::dataset::{build, Task, TaskConfig};
//! let ds = build(Task::Mnist2, &TaskConfig::small(0));
//! assert_eq!(ds.n_classes, 2);
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod dataset;
pub mod image;
pub mod pca;

pub use dataset::{build, Dataset, Sample, Task, TaskConfig};
