//! Sequence helpers (`rand::seq` subset).

use crate::{Rng, RngCore};

/// Extension methods for slices, mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Returns a uniformly chosen element, or `None` if empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<usize> = (0..50).collect();
        let mut rng = StdRng::seed_from_u64(1);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "astronomically unlikely");
    }

    #[test]
    fn choose_covers_all_elements() {
        let v = [1, 2, 3];
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[*v.choose(&mut rng).unwrap() - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
