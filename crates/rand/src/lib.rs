//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the small API subset it actually uses: the [`Rng`] extension
//! trait (`gen`, `gen_range`, `gen_bool`), [`SeedableRng::seed_from_u64`],
//! a deterministic [`rngs::StdRng`] (xoshiro256** seeded via SplitMix64)
//! and [`seq::SliceRandom::shuffle`]. The statistical quality is more than
//! sufficient for simulation sampling and tests; the stream differs from
//! upstream `rand`, which only matters if results are compared bit-for-bit
//! against runs made with the real crate.

#![warn(missing_docs)]

pub mod rngs;
pub mod seq;

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be produced uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the generator.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! float_range {
    ($t:ty) => {
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let u = <$t as Standard>::draw(rng);
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let u = <$t as Standard>::draw(rng);
                lo + (hi - lo) * u
            }
        }
    };
}

float_range!(f64);
float_range!(f32);

macro_rules! int_range {
    ($t:ty) => {
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    };
}

int_range!(u8);
int_range!(u16);
int_range!(u32);
int_range!(u64);
int_range!(usize);
int_range!(i8);
int_range!(i16);
int_range!(i32);
int_range!(i64);
int_range!(isize);

/// User-facing random-value methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rge: SampleRange<T>>(&mut self, range: Rge) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of [0,1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from seeds, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let f = rng.gen_range(-0.3..0.3);
            assert!((-0.3..0.3).contains(&f));
            let i = rng.gen_range(2usize..9);
            assert!((2..9).contains(&i));
            let inc = rng.gen_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&inc));
        }
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let f = hits as f64 / 100_000.0;
        assert!((f - 0.3).abs() < 0.01, "frequency {f}");
    }
}
