//! Monte-Carlo trajectory hardware emulator.
//!
//! Exact density-matrix emulation scales as 4ⁿ and is impractical beyond
//! ~7 qubits; the 10-qubit Melbourne experiments instead use quantum
//! trajectories: each run samples one Kraus outcome per channel on a
//! statevector (2ⁿ), and averaging over trajectories converges to the
//! density-matrix result. The noise placement is identical to
//! [`crate::emulator::HardwareEmulator`]: Pauli gate-error channels plus
//! amplitude/phase damping after every physical gate, readout confusion at
//! measurement. Like the density-matrix emulator, every entry point
//! returns typed [`BackendError`]s instead of panicking.

use crate::backend::BackendError;
use crate::device::DeviceModel;
use qnat_sim::channel::Channel1;
use qnat_sim::circuit::Circuit;
use qnat_sim::statevector::StateVector;
use rand::Rng;

/// A trajectory-sampling emulator bound to a device model.
#[derive(Debug, Clone)]
pub struct TrajectoryEmulator {
    model: DeviceModel,
    /// Trajectories averaged per evaluation.
    pub n_trajectories: usize,
}

impl TrajectoryEmulator {
    /// Creates an emulator averaging `n_trajectories` runs.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::InvalidConfig`] if `n_trajectories == 0`.
    pub fn new(model: DeviceModel, n_trajectories: usize) -> Result<Self, BackendError> {
        if n_trajectories == 0 {
            return Err(BackendError::InvalidConfig {
                reason: "need at least one trajectory".into(),
            });
        }
        Ok(TrajectoryEmulator {
            model,
            n_trajectories,
        })
    }

    /// The underlying device model.
    pub fn model(&self) -> &DeviceModel {
        &self.model
    }

    fn check_size(&self, circuit: &Circuit) -> Result<(), BackendError> {
        if circuit.n_qubits() > self.model.n_qubits() {
            return Err(BackendError::QubitCount {
                needed: circuit.n_qubits(),
                available: self.model.n_qubits(),
                backend: self.model.name().to_string(),
            });
        }
        Ok(())
    }

    /// Runs one noisy trajectory and returns the final pure state.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::QubitCount`] or
    /// [`BackendError::InvalidChannel`].
    pub fn run_one<R: Rng>(
        &self,
        circuit: &Circuit,
        rng: &mut R,
    ) -> Result<StateVector, BackendError> {
        self.check_size(circuit)?;
        let mut psi = StateVector::zero_state(circuit.n_qubits());
        for g in circuit.gates() {
            psi.apply(g);
            for (q, spec) in self.model.gate_errors(g) {
                if spec.total() > 0.0 {
                    let ch = Channel1::pauli(spec.p_x, spec.p_y, spec.p_z)?;
                    psi.apply_channel1_sampled(q, &ch, rng);
                }
            }
            let dur = if g.arity() == 2 {
                self.model.tq_duration_factor()
            } else {
                1.0
            };
            for k in 0..g.arity() {
                let q = g.qubits[k];
                let ad = (self.model.amp_damping(q) * dur).min(1.0);
                let pd = (self.model.phase_damping(q) * dur).min(1.0);
                if ad > 0.0 {
                    psi.apply_channel1_sampled(q, &Channel1::amplitude_damping(ad)?, rng);
                }
                if pd > 0.0 {
                    psi.apply_channel1_sampled(q, &Channel1::phase_damping(pd)?, rng);
                }
            }
        }
        Ok(psi)
    }

    /// Noisy Z expectations averaged over trajectories, readout error
    /// included.
    ///
    /// # Errors
    ///
    /// Propagates [`TrajectoryEmulator::run_one`] errors.
    pub fn expect_all_z<R: Rng>(
        &self,
        circuit: &Circuit,
        rng: &mut R,
    ) -> Result<Vec<f64>, BackendError> {
        let n = circuit.n_qubits();
        let mut acc = vec![0.0f64; n];
        for _ in 0..self.n_trajectories {
            let psi = self.run_one(circuit, rng)?;
            for (q, a) in acc.iter_mut().enumerate() {
                let z = psi.expect_z(q);
                *a += self.model.readout_error(q).apply_to_expectation(z);
            }
        }
        Ok(acc
            .into_iter()
            .map(|a| a / self.n_trajectories as f64)
            .collect())
    }

    /// Shot-sampled noisy Z expectations: shots are distributed over the
    /// trajectories.
    ///
    /// # Errors
    ///
    /// Propagates [`TrajectoryEmulator::run_one`] errors; returns
    /// [`BackendError::ShotBudget`] for `shots == 0`.
    pub fn sampled_expect_all_z<R: Rng>(
        &self,
        circuit: &Circuit,
        shots: usize,
        rng: &mut R,
    ) -> Result<Vec<f64>, BackendError> {
        if shots == 0 {
            return Err(BackendError::ShotBudget { requested: 0 });
        }
        let n = circuit.n_qubits();
        let per_traj = (shots / self.n_trajectories).max(1);
        let mut acc = vec![0.0f64; n];
        let mut total = 0usize;
        for _ in 0..self.n_trajectories {
            let psi = self.run_one(circuit, rng)?;
            let mut probs = psi.probabilities();
            for q in 0..n {
                self.model
                    .readout_error(q)
                    .apply_to_distribution(&mut probs, q);
            }
            let z = qnat_sim::measure::sampled_expect_all_z(&probs, n, per_traj, rng);
            for (a, v) in acc.iter_mut().zip(&z) {
                *a += v * per_traj as f64;
            }
            total += per_traj;
        }
        Ok(acc.into_iter().map(|a| a / total as f64).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emulator::HardwareEmulator;
    use crate::presets;
    use qnat_sim::gate::Gate;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn test_circuit() -> Circuit {
        let mut c = Circuit::new(2);
        c.push(Gate::ry(0, 0.8));
        c.push(Gate::sx(1));
        c.push(Gate::cx(0, 1));
        c.push(Gate::x(0));
        c
    }

    #[test]
    fn trajectories_converge_to_density_matrix() {
        let c = test_circuit();
        let model = presets::yorktown().scaled(10.0); // exaggerate noise
        let exact = HardwareEmulator::new(model.clone())
            .expect_all_z(&c)
            .unwrap();
        let traj = TrajectoryEmulator::new(model, 4000).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let approx = traj.expect_all_z(&c, &mut rng).unwrap();
        for q in 0..2 {
            assert!(
                (approx[q] - exact[q]).abs() < 0.05,
                "q{q}: trajectory {} vs exact {}",
                approx[q],
                exact[q]
            );
        }
    }

    #[test]
    fn noise_free_trajectory_is_deterministic() {
        let c = test_circuit();
        let traj = TrajectoryEmulator::new(presets::noise_free(2), 3).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let z = traj.expect_all_z(&c, &mut rng).unwrap();
        let psi = qnat_sim::statevector::simulate(&c);
        for q in 0..2 {
            assert!((z[q] - psi.expect_z(q)).abs() < 1e-10);
        }
    }

    #[test]
    fn shot_sampling_close_to_exact() {
        let c = test_circuit();
        let model = presets::santiago();
        let traj = TrajectoryEmulator::new(model, 64).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let exact = traj.expect_all_z(&c, &mut rng).unwrap();
        let sampled = traj.sampled_expect_all_z(&c, 64 * 2048, &mut rng).unwrap();
        for q in 0..2 {
            // Both estimators carry trajectory variance (σ ≈ 0.01); allow
            // a generous 6σ band to keep the test deterministic-in-practice.
            assert!(
                (exact[q] - sampled[q]).abs() < 0.08,
                "q{q}: {} vs {}",
                exact[q],
                sampled[q]
            );
        }
    }

    #[test]
    fn zero_trajectories_is_typed_error() {
        let err = TrajectoryEmulator::new(presets::santiago(), 0).unwrap_err();
        assert!(matches!(err, BackendError::InvalidConfig { .. }));
    }

    #[test]
    fn oversized_circuit_is_typed_error() {
        let traj = TrajectoryEmulator::new(presets::santiago(), 2).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let err = traj.expect_all_z(&Circuit::new(9), &mut rng).unwrap_err();
        assert!(matches!(err, BackendError::QubitCount { needed: 9, .. }));
    }
}
