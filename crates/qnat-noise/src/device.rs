//! Device noise models.
//!
//! A [`DeviceModel`] plays the role of the calibration noise model that IBMQ
//! publishes for each machine: per-qubit Pauli-twirled error distributions
//! for single-qubit gates, per-edge distributions for two-qubit gates,
//! per-qubit readout confusion matrices, plus amplitude/phase damping rates
//! that feed the density-matrix hardware emulator. Models serialize to JSON
//! (mirroring how Qiskit ships noise models) via the in-tree `qnat-json`
//! crate.

use crate::error_spec::{InvalidProbabilityError, PauliErrorSpec};
use crate::readout::{InvalidReadoutError, ReadoutError};
use qnat_json::Json;
use qnat_sim::gate::{Gate, GateKind};
use std::error::Error;
use std::fmt;

/// Error returned when a device model is internally inconsistent.
#[derive(Debug, Clone, PartialEq)]
pub struct InvalidDeviceError {
    /// Human-readable reason.
    pub reason: String,
}

impl fmt::Display for InvalidDeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid device model: {}", self.reason)
    }
}

impl Error for InvalidDeviceError {}

impl From<InvalidProbabilityError> for InvalidDeviceError {
    fn from(e: InvalidProbabilityError) -> Self {
        InvalidDeviceError {
            reason: e.to_string(),
        }
    }
}

impl From<InvalidReadoutError> for InvalidDeviceError {
    fn from(e: InvalidReadoutError) -> Self {
        InvalidDeviceError {
            reason: e.to_string(),
        }
    }
}

/// Error specification for one coupling-map edge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeError {
    /// First qubit of the (undirected) edge.
    pub a: usize,
    /// Second qubit.
    pub b: usize,
    /// Pauli error distribution applied to *each* qubit after a two-qubit
    /// gate on this edge.
    pub spec: PauliErrorSpec,
}

/// A hardware noise model: topology, gate errors, readout errors and
/// decoherence rates.
///
/// # Examples
///
/// ```
/// use qnat_noise::presets;
/// let dev = presets::santiago();
/// assert_eq!(dev.n_qubits(), 5);
/// assert!(dev.mean_single_qubit_error() < presets::yorktown().mean_single_qubit_error());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceModel {
    name: String,
    n_qubits: usize,
    quantum_volume: u32,
    coupling: Vec<(usize, usize)>,
    sq_errors: Vec<PauliErrorSpec>,
    tq_errors: Vec<EdgeError>,
    readout: Vec<ReadoutError>,
    /// Amplitude-damping probability per single-qubit gate (T1 decay over
    /// one gate duration).
    amp_damping: Vec<f64>,
    /// Phase-damping probability per single-qubit gate (pure dephasing).
    phase_damping: Vec<f64>,
    /// Two-qubit gates take this many single-qubit gate durations (their
    /// damping is scaled accordingly).
    tq_duration_factor: f64,
}

impl DeviceModel {
    /// Starts building a device model.
    pub fn builder(name: impl Into<String>, n_qubits: usize) -> DeviceModelBuilder {
        DeviceModelBuilder {
            name: name.into(),
            n_qubits,
            quantum_volume: 8,
            coupling: Vec::new(),
            sq_errors: vec![PauliErrorSpec::zero(); n_qubits],
            tq_errors: Vec::new(),
            readout: vec![ReadoutError::ideal(); n_qubits],
            amp_damping: vec![0.0; n_qubits],
            phase_damping: vec![0.0; n_qubits],
            tq_duration_factor: 8.0,
        }
    }

    /// Device name (e.g. `"ibmq-santiago"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of physical qubits.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Advertised Quantum Volume.
    pub fn quantum_volume(&self) -> u32 {
        self.quantum_volume
    }

    /// Undirected coupling-map edges.
    pub fn coupling(&self) -> &[(usize, usize)] {
        &self.coupling
    }

    /// `true` if qubits `a` and `b` are directly coupled.
    pub fn are_coupled(&self, a: usize, b: usize) -> bool {
        self.coupling
            .iter()
            .any(|&(x, y)| (x, y) == (a, b) || (y, x) == (a, b))
    }

    /// Single-qubit gate error spec for qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn single_qubit_error(&self, q: usize) -> PauliErrorSpec {
        self.sq_errors[q]
    }

    /// Two-qubit gate error spec for the edge `(a, b)`; if the pair is not
    /// in the coupling map the worst edge spec is returned (an uncompiled
    /// long-range gate can only be worse than any native one).
    pub fn two_qubit_error(&self, a: usize, b: usize) -> PauliErrorSpec {
        self.tq_errors
            .iter()
            .find(|e| (e.a, e.b) == (a, b) || (e.b, e.a) == (a, b))
            .map(|e| e.spec)
            .unwrap_or_else(|| {
                self.tq_errors
                    .iter()
                    .map(|e| e.spec)
                    .max_by(|x, y| x.total().total_cmp(&y.total()))
                    .unwrap_or_else(PauliErrorSpec::zero)
            })
    }

    /// Readout error for qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn readout_error(&self, q: usize) -> ReadoutError {
        self.readout[q]
    }

    /// Every qubit's readout confusion matrix in qubit order — the
    /// shape `MitigatedJob::with_readout` (readout-inversion sweeps)
    /// consumes.
    pub fn confusions(&self) -> Vec<qnat_sim::measure::Confusion> {
        self.readout.iter().map(|r| *r.matrix()).collect()
    }

    /// Amplitude-damping probability per single-qubit gate on qubit `q`.
    pub fn amp_damping(&self, q: usize) -> f64 {
        self.amp_damping[q]
    }

    /// Phase-damping probability per single-qubit gate on qubit `q`.
    pub fn phase_damping(&self, q: usize) -> f64 {
        self.phase_damping[q]
    }

    /// Duration of a two-qubit gate in units of single-qubit gates.
    pub fn tq_duration_factor(&self) -> f64 {
        self.tq_duration_factor
    }

    /// `true` when the gate is virtual on hardware (frame change), i.e.
    /// carries no gate error: RZ/P/identity.
    pub fn is_virtual(kind: GateKind) -> bool {
        matches!(kind, GateKind::Rz | GateKind::P | GateKind::Id)
    }

    /// The Pauli error events a gate produces: `(qubit, spec)` pairs.
    /// Virtual gates produce none; a two-qubit gate errs on both qubits
    /// with the edge spec.
    pub fn gate_errors(&self, gate: &Gate) -> Vec<(usize, PauliErrorSpec)> {
        if gate.arity() == 1 {
            if Self::is_virtual(gate.kind) {
                Vec::new()
            } else {
                vec![(gate.qubits[0], self.sq_errors[gate.qubits[0]])]
            }
        } else {
            let spec = self.two_qubit_error(gate.qubits[0], gate.qubits[1]);
            vec![(gate.qubits[0], spec), (gate.qubits[1], spec)]
        }
    }

    /// Mean total single-qubit gate error over all qubits.
    pub fn mean_single_qubit_error(&self) -> f64 {
        self.sq_errors.iter().map(|e| e.total()).sum::<f64>() / self.n_qubits as f64
    }

    /// Mean total two-qubit gate error over all edges.
    pub fn mean_two_qubit_error(&self) -> f64 {
        if self.tq_errors.is_empty() {
            return 0.0;
        }
        self.tq_errors.iter().map(|e| e.spec.total()).sum::<f64>() / self.tq_errors.len() as f64
    }

    /// Mean readout flip probability over all qubits.
    pub fn mean_readout_error(&self) -> f64 {
        self.readout
            .iter()
            .map(|r| (r.matrix()[0][1] + r.matrix()[1][0]) / 2.0)
            .sum::<f64>()
            / self.n_qubits as f64
    }

    /// A copy of this model with every error source scaled by the noise
    /// factor `t` (used for noise-factor sweeps and zero-noise
    /// extrapolation).
    pub fn scaled(&self, t: f64) -> DeviceModel {
        DeviceModel {
            name: format!("{}@T={t}", self.name),
            sq_errors: self.sq_errors.iter().map(|e| e.scaled(t)).collect(),
            tq_errors: self
                .tq_errors
                .iter()
                .map(|e| EdgeError {
                    spec: e.spec.scaled(t),
                    ..*e
                })
                .collect(),
            readout: self.readout.iter().map(|r| r.scaled(t)).collect(),
            amp_damping: self
                .amp_damping
                .iter()
                .map(|&d| (d * t).clamp(0.0, 1.0))
                .collect(),
            phase_damping: self
                .phase_damping
                .iter()
                .map(|&d| (d * t).clamp(0.0, 1.0))
                .collect(),
            ..self.clone()
        }
    }

    /// A copy of this model with gate/decoherence errors scaled by
    /// `gate_t` and readout errors scaled by `readout_t` independently —
    /// models calibration drift, where readout assignment error and gate
    /// fidelity degrade at different rates between calibrations.
    pub fn drifted(&self, gate_t: f64, readout_t: f64) -> DeviceModel {
        DeviceModel {
            name: self.name.clone(),
            sq_errors: self.sq_errors.iter().map(|e| e.scaled(gate_t)).collect(),
            tq_errors: self
                .tq_errors
                .iter()
                .map(|e| EdgeError {
                    spec: e.spec.scaled(gate_t),
                    ..*e
                })
                .collect(),
            readout: self.readout.iter().map(|r| r.scaled(readout_t)).collect(),
            amp_damping: self
                .amp_damping
                .iter()
                .map(|&d| (d * gate_t).clamp(0.0, 1.0))
                .collect(),
            phase_damping: self
                .phase_damping
                .iter()
                .map(|&d| (d * gate_t).clamp(0.0, 1.0))
                .collect(),
            ..self.clone()
        }
    }

    /// A copy of this model with amplitude/phase damping removed — the
    /// *Pauli-twirled approximation* a calibration noise model captures.
    /// Evaluating on this vs the full model measures the model/reality gap
    /// (paper Table 11).
    pub fn pauli_only(&self) -> DeviceModel {
        DeviceModel {
            name: format!("{}(pauli-only)", self.name),
            amp_damping: vec![0.0; self.n_qubits],
            phase_damping: vec![0.0; self.n_qubits],
            ..self.clone()
        }
    }

    /// Extracts the sub-device over the given physical qubits, relabeled to
    /// `0..physical.len()` in the given order. Edges whose endpoints both
    /// lie in the window are kept. Used by the transpiler so a small circuit
    /// mapped onto a big chip can be emulated without simulating idle
    /// qubits.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidDeviceError`] if a physical index is out of range or
    /// repeated.
    pub fn subdevice(&self, physical: &[usize]) -> Result<DeviceModel, InvalidDeviceError> {
        let mut seen = vec![false; self.n_qubits];
        for &p in physical {
            if p >= self.n_qubits {
                return Err(InvalidDeviceError {
                    reason: format!("physical qubit {p} out of range"),
                });
            }
            if seen[p] {
                return Err(InvalidDeviceError {
                    reason: format!("physical qubit {p} repeated"),
                });
            }
            seen[p] = true;
        }
        let relabel = |p: usize| physical.iter().position(|&x| x == p);
        let mut coupling = Vec::new();
        let mut tq_errors = Vec::new();
        for e in &self.tq_errors {
            if let (Some(a), Some(b)) = (relabel(e.a), relabel(e.b)) {
                coupling.push((a, b));
                tq_errors.push(EdgeError { a, b, spec: e.spec });
            }
        }
        let model = DeviceModel {
            name: format!("{}[{physical:?}]", self.name),
            n_qubits: physical.len(),
            quantum_volume: self.quantum_volume,
            coupling,
            sq_errors: physical.iter().map(|&p| self.sq_errors[p]).collect(),
            tq_errors,
            readout: physical.iter().map(|&p| self.readout[p]).collect(),
            amp_damping: physical.iter().map(|&p| self.amp_damping[p]).collect(),
            phase_damping: physical.iter().map(|&p| self.phase_damping[p]).collect(),
            tq_duration_factor: self.tq_duration_factor,
        };
        model.validate()?;
        Ok(model)
    }

    /// Serializes the model to JSON (the same role as Qiskit's noise-model
    /// download).
    pub fn to_json(&self) -> String {
        Json::obj([
            ("name", Json::Str(self.name.clone())),
            ("n_qubits", Json::Num(self.n_qubits as f64)),
            ("quantum_volume", Json::Num(f64::from(self.quantum_volume))),
            (
                "coupling",
                Json::Arr(
                    self.coupling
                        .iter()
                        .map(|&(a, b)| Json::nums([a as f64, b as f64]))
                        .collect(),
                ),
            ),
            (
                "sq_errors",
                Json::Arr(self.sq_errors.iter().map(|e| e.to_json_value()).collect()),
            ),
            (
                "tq_errors",
                Json::Arr(
                    self.tq_errors
                        .iter()
                        .map(|e| {
                            Json::obj([
                                ("a", Json::Num(e.a as f64)),
                                ("b", Json::Num(e.b as f64)),
                                ("spec", e.spec.to_json_value()),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "readout",
                Json::Arr(self.readout.iter().map(|r| r.to_json_value()).collect()),
            ),
            ("amp_damping", Json::nums(self.amp_damping.iter().copied())),
            (
                "phase_damping",
                Json::nums(self.phase_damping.iter().copied()),
            ),
            ("tq_duration_factor", Json::Num(self.tq_duration_factor)),
        ])
        .to_json_pretty()
    }

    /// A 64-bit fingerprint of the full calibration state: FNV-1a over
    /// the canonical JSON serialization, so *any* observable change —
    /// name, coupling map, per-qubit error rates, damping, readout,
    /// calibration drift or a recalibration step — produces a new value.
    ///
    /// The compiled-circuit cache in `qnat-core` keys on this: a plan
    /// compiled against a drifted or recalibrated model (whose
    /// noise-adaptive layout may differ at transpile level 3) can never be
    /// served for the updated device.
    pub fn fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        for byte in self.to_json().as_bytes() {
            h ^= u64::from(*byte);
            h = h.wrapping_mul(FNV_PRIME);
        }
        h
    }

    /// Parses a model from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidDeviceError`] if the JSON is malformed or the model
    /// fails validation.
    pub fn from_json(json: &str) -> Result<DeviceModel, InvalidDeviceError> {
        let bad = |reason: String| InvalidDeviceError { reason };
        let v = Json::parse(json).map_err(|e| bad(format!("JSON parse error: {e}")))?;
        let usize_field = |k: &str| {
            v.get(k)
                .and_then(Json::as_usize)
                .ok_or_else(|| bad(format!("missing or invalid field '{k}'")))
        };
        let arr_field = |k: &str| {
            v.get(k)
                .and_then(Json::as_array)
                .ok_or_else(|| bad(format!("missing or invalid array '{k}'")))
        };
        let f64_list = |k: &str| -> Result<Vec<f64>, InvalidDeviceError> {
            arr_field(k)?
                .iter()
                .map(|x| {
                    x.as_f64()
                        .ok_or_else(|| bad(format!("non-numeric entry in '{k}'")))
                })
                .collect()
        };
        let name = v
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("missing or invalid field 'name'".into()))?
            .to_string();
        let mut coupling = Vec::new();
        for pair in arr_field("coupling")? {
            match pair.as_array() {
                Some([a, b]) => match (a.as_usize(), b.as_usize()) {
                    (Some(a), Some(b)) => coupling.push((a, b)),
                    _ => return Err(bad("non-integer coupling endpoint".into())),
                },
                _ => return Err(bad("coupling entry is not a pair".into())),
            }
        }
        let sq_errors = arr_field("sq_errors")?
            .iter()
            .map(PauliErrorSpec::from_json_value)
            .collect::<Result<Vec<_>, _>>()?;
        let mut tq_errors = Vec::new();
        for e in arr_field("tq_errors")? {
            let endpoint = |k: &str| {
                e.get(k)
                    .and_then(Json::as_usize)
                    .ok_or_else(|| bad(format!("missing edge endpoint '{k}'")))
            };
            let spec = e
                .get("spec")
                .ok_or_else(|| bad("missing edge 'spec'".into()))?;
            tq_errors.push(EdgeError {
                a: endpoint("a")?,
                b: endpoint("b")?,
                spec: PauliErrorSpec::from_json_value(spec)?,
            });
        }
        let readout = arr_field("readout")?
            .iter()
            .map(ReadoutError::from_json_value)
            .collect::<Result<Vec<_>, _>>()?;
        let model = DeviceModel {
            name,
            n_qubits: usize_field("n_qubits")?,
            quantum_volume: u32::try_from(usize_field("quantum_volume")?)
                .map_err(|_| bad("quantum_volume out of range".into()))?,
            coupling,
            sq_errors,
            tq_errors,
            readout,
            amp_damping: f64_list("amp_damping")?,
            phase_damping: f64_list("phase_damping")?,
            tq_duration_factor: v
                .get("tq_duration_factor")
                .and_then(Json::as_f64)
                .ok_or_else(|| bad("missing 'tq_duration_factor'".into()))?,
        };
        model.validate()?;
        Ok(model)
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidDeviceError`] when vector lengths disagree with
    /// `n_qubits`, edges reference out-of-range qubits, or probabilities are
    /// invalid.
    pub fn validate(&self) -> Result<(), InvalidDeviceError> {
        let n = self.n_qubits;
        if self.sq_errors.len() != n
            || self.readout.len() != n
            || self.amp_damping.len() != n
            || self.phase_damping.len() != n
        {
            return Err(InvalidDeviceError {
                reason: "per-qubit vector length mismatch".into(),
            });
        }
        for e in &self.sq_errors {
            e.validate()?;
        }
        for e in &self.tq_errors {
            if e.a >= n || e.b >= n || e.a == e.b {
                return Err(InvalidDeviceError {
                    reason: format!("edge ({}, {}) out of range", e.a, e.b),
                });
            }
            e.spec.validate()?;
        }
        for &(a, b) in &self.coupling {
            if a >= n || b >= n || a == b {
                return Err(InvalidDeviceError {
                    reason: format!("coupling ({a}, {b}) out of range"),
                });
            }
        }
        for (q, &d) in self.amp_damping.iter().enumerate() {
            if !(0.0..=1.0).contains(&d) {
                return Err(InvalidDeviceError {
                    reason: format!("amp damping {d} on qubit {q} out of [0,1]"),
                });
            }
        }
        Ok(())
    }
}

impl fmt::Display for DeviceModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}q, QV{}): 1q err {:.2e}, 2q err {:.2e}, readout {:.2e}",
            self.name,
            self.n_qubits,
            self.quantum_volume,
            self.mean_single_qubit_error(),
            self.mean_two_qubit_error(),
            self.mean_readout_error()
        )
    }
}

/// Builder for [`DeviceModel`] (see C-BUILDER).
#[derive(Debug, Clone)]
pub struct DeviceModelBuilder {
    name: String,
    n_qubits: usize,
    quantum_volume: u32,
    coupling: Vec<(usize, usize)>,
    sq_errors: Vec<PauliErrorSpec>,
    tq_errors: Vec<EdgeError>,
    readout: Vec<ReadoutError>,
    amp_damping: Vec<f64>,
    phase_damping: Vec<f64>,
    tq_duration_factor: f64,
}

impl DeviceModelBuilder {
    /// Sets the Quantum Volume tag.
    pub fn quantum_volume(mut self, qv: u32) -> Self {
        self.quantum_volume = qv;
        self
    }

    /// Adds an undirected coupling edge with its two-qubit error spec.
    pub fn edge(mut self, a: usize, b: usize, spec: PauliErrorSpec) -> Self {
        self.coupling.push((a, b));
        self.tq_errors.push(EdgeError { a, b, spec });
        self
    }

    /// Sets the single-qubit error spec of qubit `q`.
    pub fn single_qubit_error(mut self, q: usize, spec: PauliErrorSpec) -> Self {
        self.sq_errors[q] = spec;
        self
    }

    /// Sets the readout error of qubit `q`.
    pub fn readout(mut self, q: usize, r: ReadoutError) -> Self {
        self.readout[q] = r;
        self
    }

    /// Sets both damping rates of qubit `q` (per single-qubit gate).
    pub fn damping(mut self, q: usize, amp: f64, phase: f64) -> Self {
        self.amp_damping[q] = amp;
        self.phase_damping[q] = phase;
        self
    }

    /// Sets the relative duration of two-qubit gates.
    pub fn tq_duration_factor(mut self, f: f64) -> Self {
        self.tq_duration_factor = f;
        self
    }

    /// Finalizes and validates the model.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidDeviceError`] if the model is inconsistent.
    pub fn build(self) -> Result<DeviceModel, InvalidDeviceError> {
        let model = DeviceModel {
            name: self.name,
            n_qubits: self.n_qubits,
            quantum_volume: self.quantum_volume,
            coupling: self.coupling,
            sq_errors: self.sq_errors,
            tq_errors: self.tq_errors,
            readout: self.readout,
            amp_damping: self.amp_damping,
            phase_damping: self.phase_damping,
            tq_duration_factor: self.tq_duration_factor,
        };
        model.validate()?;
        Ok(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_tracks_calibration_state() {
        let d = toy_device();
        assert_eq!(d.fingerprint(), d.fingerprint());
        assert_eq!(d.fingerprint(), d.clone().fingerprint());
        // Drift and noise scaling both change the fingerprint, so cached
        // compilation plans cannot survive a calibration change.
        assert_ne!(d.fingerprint(), d.drifted(1.5, 1.0).fingerprint());
        assert_ne!(d.fingerprint(), d.scaled(2.0).fingerprint());
    }

    fn toy_device() -> DeviceModel {
        DeviceModel::builder("toy", 3)
            .quantum_volume(16)
            .edge(0, 1, PauliErrorSpec::symmetric(0.01).unwrap())
            .edge(1, 2, PauliErrorSpec::symmetric(0.02).unwrap())
            .single_qubit_error(0, PauliErrorSpec::symmetric(0.001).unwrap())
            .single_qubit_error(1, PauliErrorSpec::symmetric(0.002).unwrap())
            .single_qubit_error(2, PauliErrorSpec::symmetric(0.003).unwrap())
            .readout(0, ReadoutError::asymmetric(0.01, 0.02).unwrap())
            .damping(0, 1e-4, 2e-4)
            .build()
            .unwrap()
    }

    #[test]
    fn confusions_walk_every_qubit_in_order() {
        let d = toy_device();
        let confusions = d.confusions();
        assert_eq!(confusions.len(), 3);
        assert_eq!(confusions[0], *ReadoutError::asymmetric(0.01, 0.02).unwrap().matrix());
        assert_eq!(confusions[1], *ReadoutError::ideal().matrix());
    }

    #[test]
    fn builder_produces_valid_model() {
        let d = toy_device();
        assert_eq!(d.n_qubits(), 3);
        assert!(d.are_coupled(0, 1));
        assert!(d.are_coupled(1, 0));
        assert!(!d.are_coupled(0, 2));
        assert!((d.mean_single_qubit_error() - 0.002).abs() < 1e-12);
    }

    #[test]
    fn gate_errors_respect_virtual_gates() {
        let d = toy_device();
        assert!(d.gate_errors(&Gate::rz(0, 0.5)).is_empty());
        assert!(d.gate_errors(&Gate::id(1)).is_empty());
        assert_eq!(d.gate_errors(&Gate::sx(1)).len(), 1);
        let cx_err = d.gate_errors(&Gate::cx(0, 1));
        assert_eq!(cx_err.len(), 2);
        assert!((cx_err[0].1.total() - 0.01).abs() < 1e-12);
    }

    #[test]
    fn uncoupled_pair_falls_back_to_worst_edge() {
        let d = toy_device();
        let e = d.two_qubit_error(0, 2);
        assert!((e.total() - 0.02).abs() < 1e-12);
    }

    #[test]
    fn scaled_model_scales_all_sources() {
        let d = toy_device();
        let half = d.scaled(0.5);
        assert!((half.single_qubit_error(1).total() - 0.001).abs() < 1e-12);
        assert!((half.two_qubit_error(0, 1).total() - 0.005).abs() < 1e-12);
        assert!((half.readout_error(0).matrix()[0][1] - 0.005).abs() < 1e-12);
        assert!((half.amp_damping(0) - 5e-5).abs() < 1e-15);
    }

    #[test]
    fn json_round_trip() {
        let d = toy_device();
        let js = d.to_json();
        let back = DeviceModel::from_json(&js).unwrap();
        assert_eq!(d, back);
        assert!(DeviceModel::from_json("{not json").is_err());
    }

    #[test]
    fn validation_catches_bad_edges() {
        let r = DeviceModel::builder("bad", 2)
            .edge(0, 5, PauliErrorSpec::zero())
            .build();
        assert!(r.is_err());
    }

    #[test]
    fn subdevice_relabels_and_filters() {
        let d = toy_device();
        let s = d.subdevice(&[1, 2]).unwrap();
        assert_eq!(s.n_qubits(), 2);
        // Edge (1,2) survives as (0,1) with its 0.02 spec.
        assert!(s.are_coupled(0, 1));
        assert!((s.two_qubit_error(0, 1).total() - 0.02).abs() < 1e-12);
        assert!((s.single_qubit_error(0).total() - 0.002).abs() < 1e-12);
        assert!(d.subdevice(&[0, 0]).is_err());
        assert!(d.subdevice(&[9]).is_err());
    }

    #[test]
    fn display_mentions_name_and_stats() {
        let s = toy_device().to_string();
        assert!(s.contains("toy"));
        assert!(s.contains("QV16"));
    }
}
