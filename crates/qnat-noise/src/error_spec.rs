//! Pauli-twirled gate error specifications.
//!
//! QuantumNAT approximates arbitrary gate noise by Pauli errors (via Pauli
//! twirling): after each gate, an X, Y or Z error gate is inserted with a
//! probability distribution `E = {X: pₓ, Y: p_y, Z: p_z, None: 1−Σp}` read
//! from the device calibration. A *noise factor* `T` scales the X/Y/Z
//! probabilities during sampling to trade off injection strength against
//! training stability (paper §3.2, typical `T ∈ [0.5, 1.5]`).

use qnat_json::Json;
use rand::Rng;
use std::error::Error;
use std::fmt;

/// Error returned for out-of-range probabilities.
#[derive(Debug, Clone, PartialEq)]
pub struct InvalidProbabilityError {
    /// Human-readable reason.
    pub reason: String,
}

impl fmt::Display for InvalidProbabilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid probability: {}", self.reason)
    }
}

impl Error for InvalidProbabilityError {}

/// A sampled Pauli error (or none).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PauliError {
    /// No error this time.
    None,
    /// Pauli-X (bit flip).
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z (phase flip).
    Z,
}

/// The per-gate Pauli error distribution `E`.
///
/// # Examples
///
/// ```
/// use qnat_noise::error_spec::PauliErrorSpec;
/// // IBMQ-Yorktown SX on qubit 1 (paper §3.2).
/// let e = PauliErrorSpec::new(0.00096, 0.00096, 0.00096)?;
/// assert!((e.total() - 0.00288).abs() < 1e-12);
/// # Ok::<(), qnat_noise::error_spec::InvalidProbabilityError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PauliErrorSpec {
    /// Probability of an X error.
    pub p_x: f64,
    /// Probability of a Y error.
    pub p_y: f64,
    /// Probability of a Z error.
    pub p_z: f64,
}

impl PauliErrorSpec {
    /// Creates a spec, validating that probabilities are non-negative and
    /// sum to at most 1.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidProbabilityError`] on out-of-range values.
    pub fn new(p_x: f64, p_y: f64, p_z: f64) -> Result<Self, InvalidProbabilityError> {
        let s = PauliErrorSpec { p_x, p_y, p_z };
        s.validate()?;
        Ok(s)
    }

    /// A zero-error spec.
    pub const fn zero() -> Self {
        PauliErrorSpec {
            p_x: 0.0,
            p_y: 0.0,
            p_z: 0.0,
        }
    }

    /// Symmetric spec with each Pauli probability equal to `total / 3`.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidProbabilityError`] if `total ∉ [0, 1]`.
    pub fn symmetric(total: f64) -> Result<Self, InvalidProbabilityError> {
        PauliErrorSpec::new(total / 3.0, total / 3.0, total / 3.0)
    }

    /// Validates the spec.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidProbabilityError`] on out-of-range values.
    pub fn validate(&self) -> Result<(), InvalidProbabilityError> {
        if self.p_x < 0.0 || self.p_y < 0.0 || self.p_z < 0.0 {
            return Err(InvalidProbabilityError {
                reason: format!("negative Pauli probability in {self:?}"),
            });
        }
        // Allow a float-rounding hair above 1 (e.g. after renormalization
        // in `scaled`).
        if self.total() > 1.0 + 1e-9 {
            return Err(InvalidProbabilityError {
                reason: format!("Pauli probabilities sum to {} > 1", self.total()),
            });
        }
        Ok(())
    }

    /// Total error probability `pₓ + p_y + p_z`.
    pub fn total(&self) -> f64 {
        self.p_x + self.p_y + self.p_z
    }

    /// Scales all three probabilities by the noise factor `t`, clamping the
    /// total at 1 so arbitrarily large factors (e.g. unbounded calibration
    /// drift) still yield a valid distribution.
    pub fn scaled(&self, t: f64) -> PauliErrorSpec {
        let t = t.max(0.0);
        let mut s = PauliErrorSpec {
            p_x: self.p_x * t,
            p_y: self.p_y * t,
            p_z: self.p_z * t,
        };
        let tot = s.total();
        if tot > 1.0 {
            // Renormalize strictly below 1: a plain 1/tot factor rounds the
            // sum an ulp above 1 often enough that downstream channel
            // construction (`Channel1::pauli`) rejects the spec mid-run.
            let f = (1.0 - 1e-12) / tot;
            s.p_x = (s.p_x * f).clamp(0.0, 1.0);
            s.p_y = (s.p_y * f).clamp(0.0, 1.0);
            s.p_z = (s.p_z * f).clamp(0.0, 1.0);
        }
        s
    }

    /// Serializes to a JSON value `{"p_x": …, "p_y": …, "p_z": …}`.
    pub fn to_json_value(&self) -> Json {
        Json::obj([
            ("p_x", Json::Num(self.p_x)),
            ("p_y", Json::Num(self.p_y)),
            ("p_z", Json::Num(self.p_z)),
        ])
    }

    /// Parses a spec from a JSON value produced by
    /// [`PauliErrorSpec::to_json_value`].
    ///
    /// # Errors
    ///
    /// Returns [`InvalidProbabilityError`] on missing/non-numeric fields or
    /// out-of-range probabilities.
    pub fn from_json_value(v: &Json) -> Result<Self, InvalidProbabilityError> {
        let field = |k: &str| {
            v.get(k)
                .and_then(Json::as_f64)
                .ok_or_else(|| InvalidProbabilityError {
                    reason: format!("missing or non-numeric field '{k}'"),
                })
        };
        PauliErrorSpec::new(field("p_x")?, field("p_y")?, field("p_z")?)
    }

    /// Samples one error event from the distribution
    /// `{X: pₓ, Y: p_y, Z: p_z, None: 1−Σ}`.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> PauliError {
        let u: f64 = rng.gen();
        if u < self.p_x {
            PauliError::X
        } else if u < self.p_x + self.p_y {
            PauliError::Y
        } else if u < self.total() {
            PauliError::Z
        } else {
            PauliError::None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn validation_rejects_bad_specs() {
        assert!(PauliErrorSpec::new(-0.1, 0.0, 0.0).is_err());
        assert!(PauliErrorSpec::new(0.5, 0.4, 0.2).is_err());
        assert!(PauliErrorSpec::new(0.01, 0.01, 0.01).is_ok());
    }

    #[test]
    fn scaling_by_noise_factor() {
        let e = PauliErrorSpec::new(0.001, 0.002, 0.003).unwrap();
        let s = e.scaled(1.5);
        assert!((s.p_x - 0.0015).abs() < 1e-12);
        assert!((s.total() - 0.009).abs() < 1e-12);
        // Zero factor disables the noise.
        assert_eq!(e.scaled(0.0).total(), 0.0);
    }

    #[test]
    fn scaling_clamps_total_at_one() {
        let e = PauliErrorSpec::new(0.3, 0.3, 0.3).unwrap();
        let s = e.scaled(10.0);
        // Saturates just below 1 — never above, so channel construction
        // (which rejects sums > 1) cannot fail after any amount of drift.
        assert!(s.total() <= 1.0, "total {} > 1", s.total());
        assert!((s.total() - 1.0).abs() < 1e-9);
        // Relative composition preserved.
        assert!((s.p_x - s.p_y).abs() < 1e-12);
    }

    #[test]
    fn sampling_frequencies_match_probabilities() {
        let e = PauliErrorSpec::new(0.1, 0.2, 0.3).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let n = 100_000;
        let mut counts = [0usize; 4];
        for _ in 0..n {
            match e.sample(&mut rng) {
                PauliError::X => counts[0] += 1,
                PauliError::Y => counts[1] += 1,
                PauliError::Z => counts[2] += 1,
                PauliError::None => counts[3] += 1,
            }
        }
        let f = |c: usize| c as f64 / n as f64;
        assert!((f(counts[0]) - 0.1).abs() < 0.01);
        assert!((f(counts[1]) - 0.2).abs() < 0.01);
        assert!((f(counts[2]) - 0.3).abs() < 0.01);
        assert!((f(counts[3]) - 0.4).abs() < 0.01);
    }

    #[test]
    fn zero_spec_never_samples_errors() {
        let e = PauliErrorSpec::zero();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert_eq!(e.sample(&mut rng), PauliError::None);
        }
    }

    #[test]
    fn json_round_trip() {
        let e = PauliErrorSpec::new(0.00096, 0.00096, 0.00096).unwrap();
        let text = e.to_json_value().to_json();
        let back = PauliErrorSpec::from_json_value(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(e, back);
        assert!(PauliErrorSpec::from_json_value(&Json::Null).is_err());
    }
}
