//! Readout (measurement) error model.
//!
//! Each qubit carries a 2×2 confusion matrix `M[true][observed]`, e.g.
//! IBMQ-Santiago qubit 0: `[[0.984, 0.016], [0.022, 0.978]]` — a `|0⟩` is
//! read as 0 with probability 0.984 (paper §3.2, "Readout noise injection").

use qnat_json::Json;
use qnat_sim::measure::{apply_confusion, confuse_expectation, Confusion};
use std::error::Error;
use std::fmt;

/// Error returned when a confusion matrix is not row-stochastic.
#[derive(Debug, Clone, PartialEq)]
pub struct InvalidReadoutError {
    /// Human-readable reason.
    pub reason: String,
}

impl fmt::Display for InvalidReadoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid readout matrix: {}", self.reason)
    }
}

impl Error for InvalidReadoutError {}

/// A validated per-qubit readout confusion matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadoutError {
    matrix: Confusion,
}

impl Default for ReadoutError {
    fn default() -> Self {
        ReadoutError::ideal()
    }
}

impl ReadoutError {
    /// Builds a readout error from `M[true][observed]`, validating that each
    /// row is a probability distribution.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidReadoutError`] if entries are outside `[0, 1]` or
    /// rows do not sum to 1 within `1e-9`.
    pub fn new(matrix: Confusion) -> Result<Self, InvalidReadoutError> {
        for (t, row) in matrix.iter().enumerate() {
            for (o, &p) in row.iter().enumerate() {
                if !(0.0..=1.0).contains(&p) {
                    return Err(InvalidReadoutError {
                        reason: format!("entry ({t},{o}) = {p} out of [0,1]"),
                    });
                }
            }
            let s: f64 = row.iter().sum();
            if (s - 1.0).abs() > 1e-9 {
                return Err(InvalidReadoutError {
                    reason: format!("row {t} sums to {s}, expected 1"),
                });
            }
        }
        Ok(ReadoutError { matrix })
    }

    /// Perfect readout (identity confusion).
    pub fn ideal() -> Self {
        ReadoutError {
            matrix: [[1.0, 0.0], [0.0, 1.0]],
        }
    }

    /// Symmetric readout error: both `0→1` and `1→0` flip with probability
    /// `p`.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidReadoutError`] if `p ∉ [0, 1]`.
    pub fn symmetric(p: f64) -> Result<Self, InvalidReadoutError> {
        ReadoutError::new([[1.0 - p, p], [p, 1.0 - p]])
    }

    /// Asymmetric readout error with distinct `0→1` (`p01`) and `1→0`
    /// (`p10`) flip probabilities — real devices read `|1⟩` worse than
    /// `|0⟩`.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidReadoutError`] on out-of-range probabilities.
    pub fn asymmetric(p01: f64, p10: f64) -> Result<Self, InvalidReadoutError> {
        ReadoutError::new([[1.0 - p01, p01], [p10, 1.0 - p10]])
    }

    /// The raw confusion matrix `M[true][observed]`.
    pub fn matrix(&self) -> &Confusion {
        &self.matrix
    }

    /// Scales the off-diagonal (error) entries by the noise factor `t`,
    /// clamping flip probabilities to `[0, 1]`.
    pub fn scaled(&self, t: f64) -> ReadoutError {
        let t = t.max(0.0);
        let p01 = (self.matrix[0][1] * t).min(1.0);
        let p10 = (self.matrix[1][0] * t).min(1.0);
        ReadoutError {
            matrix: [[1.0 - p01, p01], [p10, 1.0 - p10]],
        }
    }

    /// Serializes to a JSON value `{"matrix": [[…,…],[…,…]]}`.
    pub fn to_json_value(&self) -> Json {
        Json::obj([(
            "matrix",
            Json::Arr(vec![
                Json::nums(self.matrix[0]),
                Json::nums(self.matrix[1]),
            ]),
        )])
    }

    /// Parses a readout error from a JSON value produced by
    /// [`ReadoutError::to_json_value`].
    ///
    /// # Errors
    ///
    /// Returns [`InvalidReadoutError`] on malformed JSON shape or a
    /// non-row-stochastic matrix.
    pub fn from_json_value(v: &Json) -> Result<Self, InvalidReadoutError> {
        let rows = v
            .get("matrix")
            .and_then(Json::as_array)
            .ok_or_else(|| InvalidReadoutError {
                reason: "missing 'matrix' array".into(),
            })?;
        let mut matrix: Confusion = [[0.0; 2]; 2];
        if rows.len() != 2 {
            return Err(InvalidReadoutError {
                reason: format!("expected 2 rows, got {}", rows.len()),
            });
        }
        for (t, row) in rows.iter().enumerate() {
            let cells = row.as_array().ok_or_else(|| InvalidReadoutError {
                reason: format!("row {t} is not an array"),
            })?;
            if cells.len() != 2 {
                return Err(InvalidReadoutError {
                    reason: format!("row {t} has {} entries, expected 2", cells.len()),
                });
            }
            for (o, cell) in cells.iter().enumerate() {
                matrix[t][o] = cell.as_f64().ok_or_else(|| InvalidReadoutError {
                    reason: format!("entry ({t},{o}) is not a number"),
                })?;
            }
        }
        ReadoutError::new(matrix)
    }

    /// Applies this qubit's confusion to a joint distribution (in place).
    pub fn apply_to_distribution(&self, probs: &mut [f64], q: usize) {
        apply_confusion(probs, q, &self.matrix);
    }

    /// Transforms a Z expectation through the confusion — the affine
    /// `γ·y + β` map of Theorem 3.1 restricted to readout noise.
    pub fn apply_to_expectation(&self, z: f64) -> f64 {
        confuse_expectation(z, &self.matrix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(ReadoutError::new([[0.984, 0.016], [0.022, 0.978]]).is_ok());
        assert!(ReadoutError::new([[0.9, 0.2], [0.0, 1.0]]).is_err());
        assert!(ReadoutError::new([[1.1, -0.1], [0.0, 1.0]]).is_err());
        assert!(ReadoutError::symmetric(1.5).is_err());
    }

    #[test]
    fn ideal_is_identity_on_expectations() {
        let r = ReadoutError::ideal();
        for z in [-1.0, -0.3, 0.0, 0.7, 1.0] {
            assert!((r.apply_to_expectation(z) - z).abs() < 1e-15);
        }
    }

    #[test]
    fn expectation_map_matches_paper_example() {
        // Santiago qubit 0 (paper §3.2): P(0)=0.3, P(1)=0.7 →
        // P'(1) = 0.7·0.978 + 0.3·0.016 = 0.6894 (paper rounds to 0.69).
        let r = ReadoutError::new([[0.984, 0.016], [0.022, 0.978]]).unwrap();
        let z = r.apply_to_expectation(-0.4);
        assert!((z - (1.0 - 2.0 * 0.6894)).abs() < 1e-10, "z={z}");
    }

    #[test]
    fn scaling_readout() {
        let r = ReadoutError::asymmetric(0.02, 0.04).unwrap();
        let half = r.scaled(0.5);
        assert!((half.matrix()[0][1] - 0.01).abs() < 1e-12);
        assert!((half.matrix()[1][0] - 0.02).abs() < 1e-12);
        let zero = r.scaled(0.0);
        assert_eq!(zero, ReadoutError::ideal());
    }

    #[test]
    fn json_round_trip() {
        let r = ReadoutError::asymmetric(0.016, 0.022).unwrap();
        let text = r.to_json_value().to_json();
        let back = ReadoutError::from_json_value(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(r, back);
        // Shape and stochasticity failures are reported, not panicked.
        assert!(ReadoutError::from_json_value(&Json::Null).is_err());
        let bad = Json::parse(r#"{"matrix": [[0.9, 0.2], [0.0, 1.0]]}"#).unwrap();
        assert!(ReadoutError::from_json_value(&bad).is_err());
    }
}
