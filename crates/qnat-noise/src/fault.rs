//! Fault injection for deployment-pipeline robustness testing.
//!
//! [`FaultyBackend`] decorates any [`QuantumBackend`] with the failure
//! modes real cloud QPUs exhibit: transient job rejections, queue
//! timeouts, shot-budget truncation, and calibration drift (readout and
//! gate error rates wandering away from the calibration point as jobs
//! accumulate). Faults are *seed-deterministic per job index*: whether
//! job `k` fails depends only on `(spec.seed, k)`, never on how many
//! retries earlier jobs needed, so fault sweeps and regression tests are
//! exactly reproducible.
//!
//! Drift follows one of three [`DriftModel`]s — the linear creep of the
//! original fault layer, a seed-deterministic random walk around the
//! calibration point, or sessionized drift that snaps back at every
//! recalibration — all clamped into physical `[0, 1]` error rates by the
//! device model downstream.

use crate::backend::{BackendError, Measurements, QuantumBackend};
use qnat_sim::circuit::Circuit;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How the calibration-drift scales evolve with the job index.
///
/// All three models are pure functions of `(spec.seed, job)` — a backend
/// replaying the same job range sees bitwise the same drift trajectory —
/// and all produce non-negative scales that the device model clamps into
/// valid `[0, 1]` error probabilities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DriftModel {
    /// Monotone creep: job `k` runs at scale `1 + k·rate` (the original
    /// model — error grows without bound until the clamp saturates).
    Linear,
    /// Random walk around the calibration point: job `k` runs at scale
    /// `1 + rate·W_k` where `W_k` sums `k` seed-deterministic steps drawn
    /// uniformly from `[−1, 1]`. Models parameter wander between
    /// calibrations more faithfully than monotone creep: error can
    /// improve as well as degrade, and the excursion grows like `√k`.
    RandomWalk,
    /// Sessionized drift: error creeps linearly *within* a calibration
    /// session of `interval` jobs, then snaps back at the recalibration
    /// boundary. Each session also carries a seed-deterministic baseline
    /// offset (a calibration is only as good as its fit), so consecutive
    /// sessions start from slightly different error floors — the pattern
    /// IBMQ devices show across daily calibration cycles.
    StepRecalibration {
        /// Jobs per calibration session (clamped to ≥ 1).
        interval: u64,
    },
}

/// Configurable fault rates and drift slopes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Probability a job fails transiently (retry may succeed).
    pub transient_failure_rate: f64,
    /// Probability a job times out in the queue (retry may succeed).
    pub timeout_rate: f64,
    /// Probability a finite-shot job comes back with a truncated budget.
    pub shot_truncation_rate: f64,
    /// Fraction of the requested shots delivered when truncated.
    pub shot_truncation_factor: f64,
    /// Readout drift rate: how fast the readout error scale moves per job
    /// index, interpreted by [`FaultSpec::drift`] (slope for
    /// [`DriftModel::Linear`] and [`DriftModel::StepRecalibration`], step
    /// amplitude for [`DriftModel::RandomWalk`]). Drifted error
    /// probabilities are clamped into `[0, 1]` by the device model, so
    /// arbitrarily long runs saturate instead of producing invalid
    /// channels.
    pub readout_drift_per_job: f64,
    /// Gate drift rate (same interpretation and clamping).
    pub gate_drift_per_job: f64,
    /// Couples the *transient-failure* rate to the drift trajectory: at
    /// drift scale `s = max(gate, readout)`, the effective transient rate
    /// becomes `rate · (1 + coupling·(s − 1))`, clamped to `[0, 1]`. This
    /// models hardware whose readiness checks flake more as calibration
    /// decays — the observable signal a calibration tracker learns drift
    /// from. `0.0` (the default) keeps the legacy fixed rate, bitwise:
    /// the fault roll consumes the same RNG draw either way.
    pub failure_drift_coupling: f64,
    /// Trajectory the drift scales follow over the job index.
    pub drift: DriftModel,
    /// Seed of the per-job fault schedule.
    pub seed: u64,
    /// Seed of the drift trajectory, separate from the fault-roll `seed`:
    /// a batch pool decorrelates fault rolls by perturbing `seed` per job
    /// while leaving `drift_seed` alone, so every per-job backend samples
    /// the *same* fleet-wide calibration trajectory (positioned via
    /// [`FaultyBackend::starting_at`]). Constructors default it to `seed`.
    pub drift_seed: u64,
}

impl FaultSpec {
    /// A fault-free specification (the decorator becomes transparent).
    pub fn none() -> FaultSpec {
        FaultSpec {
            transient_failure_rate: 0.0,
            timeout_rate: 0.0,
            shot_truncation_rate: 0.0,
            shot_truncation_factor: 0.25,
            readout_drift_per_job: 0.0,
            gate_drift_per_job: 0.0,
            failure_drift_coupling: 0.0,
            drift: DriftModel::Linear,
            seed: 0,
            drift_seed: 0,
        }
    }

    /// Only transient failures, at the given rate.
    pub fn transient(rate: f64, seed: u64) -> FaultSpec {
        FaultSpec {
            transient_failure_rate: rate,
            seed,
            drift_seed: seed,
            ..FaultSpec::none()
        }
    }

    /// `true` when any drift slope is non-zero.
    pub fn has_drift(&self) -> bool {
        self.readout_drift_per_job != 0.0 || self.gate_drift_per_job != 0.0
    }

    /// The effective transient-failure rate at drift scales
    /// `(gate, readout)` — the [`failure_drift_coupling`] law a
    /// [`FaultyBackend`] applies, exposed pure so calibration baselines
    /// and benches can compute the ground truth a tracker is chasing.
    ///
    /// [`failure_drift_coupling`]: FaultSpec::failure_drift_coupling
    pub fn effective_transient_rate(&self, gate_scale: f64, readout_scale: f64) -> f64 {
        let mut rate = self.transient_failure_rate;
        if self.has_drift() && self.failure_drift_coupling != 0.0 {
            let s = gate_scale.max(readout_scale);
            rate *= 1.0 + self.failure_drift_coupling * (s - 1.0);
        }
        rate.clamp(0.0, 1.0)
    }
}

/// SplitMix64 — decorrelates consecutive job indices into independent
/// per-job seeds.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A 53-bit uniform draw in `[0, 1)` from `(seed, salt, index)` — the
/// deterministic source behind drift trajectories.
fn unit_draw(seed: u64, salt: u64, index: u64) -> f64 {
    let h = splitmix64(seed ^ salt ^ splitmix64(index));
    (h >> 11) as f64 / (1u64 << 53) as f64
}

const WALK_GATE_SALT: u64 = 0xd21f_7a7e_ca11_b0a7;
const WALK_READOUT_SALT: u64 = 0x5ead_0077_0dd5_ee1d;
const SESSION_GATE_SALT: u64 = 0xca1b_0b5e_5510_0a7e;
const SESSION_READOUT_SALT: u64 = 0xf1ee_7b0a_7d15_ea5e;

/// One random-walk step in `[−1, 1]` for drift index `job`.
fn walk_step(seed: u64, salt: u64, job: u64) -> f64 {
    2.0 * unit_draw(seed, salt, job) - 1.0
}

/// An incremental evaluator of a [`FaultSpec`]'s drift trajectory: the
/// `(gate, readout)` error-rate scales a device following `spec` exhibits
/// at any drift index, bitwise identical to what a [`FaultyBackend`]
/// walking the same indices applies.
///
/// This is the scoring half of the fault layer, split out so a fleet
/// router can ask "how noisy is this device *right now*?" without
/// executing anything. Evaluation stays pure in `(spec, job)`: the only
/// internal state is the random-walk prefix sum, which is replayed from
/// scratch whenever `job` moves backwards.
#[derive(Debug, Clone)]
pub struct DriftCursor {
    spec: FaultSpec,
    /// Next walk index to accumulate (random-walk model only): the walk
    /// position currently holds Σ steps with index `< next`.
    next: u64,
    walk_gate: f64,
    walk_readout: f64,
}

impl DriftCursor {
    /// A cursor positioned at drift index 0.
    pub fn new(spec: FaultSpec) -> DriftCursor {
        DriftCursor {
            spec,
            next: 0,
            walk_gate: 0.0,
            walk_readout: 0.0,
        }
    }

    /// The underlying fault specification.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// `(gate, readout)` drift scales at drift index `job` — non-negative
    /// and pure in `(spec, job)`. Sequential forward queries advance the
    /// random walk in O(Δjob); a backwards query rewinds by replaying the
    /// walk from index 0, keeping results bitwise independent of the
    /// query order.
    pub fn scales_at(&mut self, job: u64) -> (f64, f64) {
        let gr = self.spec.gate_drift_per_job;
        let rr = self.spec.readout_drift_per_job;
        match self.spec.drift {
            DriftModel::Linear => {
                let k = job as f64;
                ((1.0 + k * gr).max(0.0), (1.0 + k * rr).max(0.0))
            }
            DriftModel::RandomWalk => {
                if job < self.next {
                    self.next = 0;
                    self.walk_gate = 0.0;
                    self.walk_readout = 0.0;
                }
                while self.next < job {
                    self.walk_gate +=
                        walk_step(self.spec.drift_seed, WALK_GATE_SALT, self.next);
                    self.walk_readout +=
                        walk_step(self.spec.drift_seed, WALK_READOUT_SALT, self.next);
                    self.next += 1;
                }
                (
                    (1.0 + gr * self.walk_gate).max(0.0),
                    (1.0 + rr * self.walk_readout).max(0.0),
                )
            }
            DriftModel::StepRecalibration { interval } => {
                let interval = interval.max(1);
                let session = job / interval;
                let phase = (job % interval) as f64;
                // Per-session baseline miscalibration: up to half a
                // session of pre-paid drift, redrawn at each
                // recalibration.
                let half = interval as f64 * 0.5;
                let base_g = unit_draw(self.spec.drift_seed, SESSION_GATE_SALT, session) * half;
                let base_r = unit_draw(self.spec.drift_seed, SESSION_READOUT_SALT, session) * half;
                (
                    (1.0 + gr * (phase + base_g)).max(0.0),
                    (1.0 + rr * (phase + base_r)).max(0.0),
                )
            }
        }
    }
}

/// A backend decorator injecting seed-deterministic faults.
#[derive(Debug, Clone)]
pub struct FaultyBackend<B> {
    inner: B,
    spec: FaultSpec,
    job_index: u64,
    /// Batch-global index of this backend's first job — lets per-job
    /// backends built by a pool continue one fleet-wide drift trajectory.
    drift_offset: u64,
    /// Incremental drift evaluator, kept in step with the executed jobs.
    cursor: DriftCursor,
}

impl<B: QuantumBackend> FaultyBackend<B> {
    /// Wraps `inner` with the fault schedule of `spec`.
    pub fn new(inner: B, spec: FaultSpec) -> Self {
        FaultyBackend {
            inner,
            spec,
            job_index: 0,
            drift_offset: 0,
            cursor: DriftCursor::new(spec),
        }
    }

    /// Like [`FaultyBackend::new`], but with the drift trajectory
    /// fast-forwarded to position `first_job`: the backend's first job
    /// runs at the drift scale job `first_job` of a fresh backend would
    /// see. Fault *rolls* still follow the local job index — this only
    /// positions drift, so a batch pool can give every per-job backend
    /// its slice of one fleet-wide calibration trajectory.
    pub fn starting_at(inner: B, spec: FaultSpec, first_job: u64) -> Self {
        let mut b = FaultyBackend::new(inner, spec);
        b.drift_offset = first_job;
        b
    }

    /// Number of jobs submitted so far (attempts count: every `execute`
    /// call is one job).
    pub fn jobs_submitted(&self) -> u64 {
        self.job_index
    }

    /// The fault specification.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// Read access to the wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// The RNG deciding job `k`'s faults — a pure function of
    /// `(spec.seed, k)`.
    fn fault_rng(&self, job: u64) -> StdRng {
        StdRng::seed_from_u64(splitmix64(self.spec.seed ^ splitmix64(job)))
    }
}

impl<B: QuantumBackend> QuantumBackend for FaultyBackend<B> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn n_qubits(&self) -> usize {
        self.inner.n_qubits()
    }

    fn validate(&self, circuit: &Circuit) -> Result<(), BackendError> {
        self.inner.validate(circuit)
    }

    fn execute(
        &mut self,
        circuit: &Circuit,
        shots: Option<usize>,
    ) -> Result<Measurements, BackendError> {
        let job = self.job_index;
        self.job_index += 1;
        let mut rng = self.fault_rng(job);
        let mut transient_rate = self.spec.transient_failure_rate;
        if self.spec.has_drift() {
            let drift_job = self.drift_offset + job;
            let (gate_scale, readout_scale) = self.cursor.scales_at(drift_job);
            self.inner.apply_drift(gate_scale, readout_scale);
            if self.spec.failure_drift_coupling != 0.0 {
                let s = gate_scale.max(readout_scale);
                transient_rate *= 1.0 + self.spec.failure_drift_coupling * (s - 1.0);
            }
        }
        // Fault rolls happen in a fixed order so the schedule is stable
        // under spec-rate changes of later faults.
        if rng.gen_bool(transient_rate.clamp(0.0, 1.0)) {
            return Err(BackendError::TransientFailure {
                job,
                reason: "injected transient fault".into(),
            });
        }
        if rng.gen_bool(self.spec.timeout_rate.clamp(0.0, 1.0)) {
            return Err(BackendError::QueueTimeout {
                job,
                waited_ms: rng.gen_range(10_000..120_000),
            });
        }
        let effective_shots = match shots {
            Some(s) if rng.gen_bool(self.spec.shot_truncation_rate.clamp(0.0, 1.0)) => {
                Some(((s as f64 * self.spec.shot_truncation_factor) as usize).max(1))
            }
            other => other,
        };
        self.inner.execute(circuit, effective_shots)
    }

    fn apply_drift(&mut self, gate_scale: f64, readout_scale: f64) {
        self.inner.apply_drift(gate_scale, readout_scale);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::SimulatorBackend;
    use qnat_sim::gate::Gate;

    fn bell() -> Circuit {
        let mut c = Circuit::new(2);
        c.push(Gate::h(0));
        c.push(Gate::cx(0, 1));
        c
    }

    fn run_schedule(spec: FaultSpec, jobs: usize) -> Vec<bool> {
        let mut b = FaultyBackend::new(SimulatorBackend::new(1), spec);
        (0..jobs).map(|_| b.execute(&bell(), None).is_ok()).collect()
    }

    #[test]
    fn fault_free_spec_is_transparent() {
        let mut plain = SimulatorBackend::new(1);
        let mut wrapped = FaultyBackend::new(SimulatorBackend::new(1), FaultSpec::none());
        let a = plain.execute(&bell(), Some(512)).unwrap();
        let b = wrapped.execute(&bell(), Some(512)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn schedule_is_seed_deterministic() {
        let spec = FaultSpec::transient(0.4, 9);
        assert_eq!(run_schedule(spec, 50), run_schedule(spec, 50));
        let other = FaultSpec::transient(0.4, 10);
        assert_ne!(run_schedule(spec, 50), run_schedule(other, 50));
    }

    #[test]
    fn failure_frequency_tracks_rate() {
        let ok = run_schedule(FaultSpec::transient(0.3, 5), 1000);
        let failures = ok.iter().filter(|&&x| !x).count();
        assert!((200..400).contains(&failures), "{failures} failures");
    }

    #[test]
    fn injected_faults_are_retryable() {
        let mut b = FaultyBackend::new(
            SimulatorBackend::new(1),
            FaultSpec {
                timeout_rate: 1.0,
                ..FaultSpec::none()
            },
        );
        let err = b.execute(&bell(), None).unwrap_err();
        assert!(matches!(err, BackendError::QueueTimeout { job: 0, .. }));
        assert!(err.is_retryable());
    }

    #[test]
    fn shot_truncation_reduces_budget() {
        let mut b = FaultyBackend::new(
            SimulatorBackend::new(1),
            FaultSpec {
                shot_truncation_rate: 1.0,
                shot_truncation_factor: 0.25,
                ..FaultSpec::none()
            },
        );
        let m = b.execute(&bell(), Some(8192)).unwrap();
        assert_eq!(m.shots_used, Some(2048));
        // Exact jobs cannot be truncated.
        let m = b.execute(&bell(), None).unwrap();
        assert_eq!(m.shots_used, None);
    }

    #[test]
    fn validation_errors_pass_through_inner() {
        let mut b = FaultyBackend::new(SimulatorBackend::new(1), FaultSpec::none());
        let mut c = Circuit::new(1);
        c.push(Gate::ry(0, f64::INFINITY));
        assert!(matches!(
            b.execute(&c, None).unwrap_err(),
            BackendError::NonFiniteParameter { .. }
        ));
    }

    #[test]
    fn heavy_drift_saturates_instead_of_failing() {
        // Regression: drifted Pauli probabilities used to renormalize to a
        // sum one ulp above 1.0, so long runs (scale ≫ 1) hit non-retryable
        // InvalidChannel errors mid-run. They must clamp into [0, 1] and
        // keep serving physical expectations instead.
        use crate::backend::EmulatorBackend;
        use crate::presets;
        let model = presets::yorktown().subdevice(&[0, 1]).unwrap();
        let mut b = FaultyBackend::new(
            EmulatorBackend::new(&model, 3).unwrap(),
            FaultSpec {
                gate_drift_per_job: 2.0,
                readout_drift_per_job: 2.0,
                seed: 4,
                ..FaultSpec::none()
            },
        );
        let mut c = Circuit::new(2);
        c.push(Gate::h(0));
        c.push(Gate::cx(0, 1));
        for job in 0..400 {
            let m = b.execute(&c, None).unwrap_or_else(|e| {
                panic!("job {job} failed under heavy drift: {e}")
            });
            assert!(
                m.expectations.iter().all(|z| z.is_finite() && z.abs() <= 1.0 + 1e-9),
                "job {job} produced unphysical expectations: {:?}",
                m.expectations
            );
        }
        // The drifted model itself stays a valid probability distribution.
        let drifted = model.drifted(1e6, 1e6);
        for q in 0..drifted.n_qubits() {
            let e = drifted.single_qubit_error(q);
            assert!(e.validate().is_ok(), "qubit {q}: {e:?}");
            assert!(e.total() <= 1.0, "qubit {q} total {}", e.total());
        }
    }

    fn drift_spec(drift: DriftModel, rate: f64, seed: u64) -> FaultSpec {
        FaultSpec {
            gate_drift_per_job: rate,
            readout_drift_per_job: rate,
            drift,
            seed,
            drift_seed: seed,
            ..FaultSpec::none()
        }
    }

    /// The `(gate, readout)` drift-scale trajectory a fresh backend walks
    /// through over `jobs` executions.
    fn drift_trajectory(spec: FaultSpec, jobs: u64) -> Vec<(f64, f64)> {
        let mut cursor = DriftCursor::new(spec);
        (0..jobs).map(|j| cursor.scales_at(j)).collect()
    }

    #[test]
    fn random_walk_is_seed_deterministic_varied_and_non_negative() {
        let spec = drift_spec(DriftModel::RandomWalk, 0.4, 17);
        let a = drift_trajectory(spec, 200);
        let b = drift_trajectory(spec, 200);
        assert_eq!(a, b, "same seed → bitwise same walk");
        let other = drift_trajectory(drift_spec(DriftModel::RandomWalk, 0.4, 18), 200);
        assert_ne!(a, other, "different seed → different walk");
        assert!(a.iter().all(|&(g, r)| g >= 0.0 && r >= 0.0));
        // A real walk moves both ways: some scales above 1, some below.
        assert!(a.iter().any(|&(g, _)| g > 1.0) && a.iter().any(|&(g, _)| g < 1.0), "{a:?}");
    }

    #[test]
    fn step_recalibration_snaps_back_at_session_boundaries() {
        let spec = drift_spec(DriftModel::StepRecalibration { interval: 20 }, 0.1, 3);
        let t = drift_trajectory(spec, 60);
        for session in 0..3u64 {
            let start = (session * 20) as usize;
            // Within a session drift creeps up monotonically...
            for k in start..start + 19 {
                assert!(t[k + 1].0 > t[k].0, "job {k}: {:?} !< {:?}", t[k], t[k + 1]);
            }
        }
        // ...and every recalibration drops the error back near its floor:
        // the session-start scale is below the previous session's peak by
        // more than the baseline spread (half an interval of drift).
        for session in 1..3u64 {
            let boundary = (session * 20) as usize;
            assert!(
                t[boundary].0 < t[boundary - 1].0 - 0.1 * 9.0,
                "session {session} did not recalibrate: {:?} vs {:?}",
                t[boundary],
                t[boundary - 1]
            );
        }
    }

    #[test]
    fn starting_at_continues_the_fleet_trajectory_bitwise() {
        for drift in [
            DriftModel::Linear,
            DriftModel::RandomWalk,
            DriftModel::StepRecalibration { interval: 7 },
        ] {
            let spec = drift_spec(drift, 0.25, 9);
            let full = drift_trajectory(spec, 50);
            // A backend fast-forwarded to job 30 must see bitwise the same
            // scales as jobs 30.. of the fresh backend.
            let mut resumed = FaultyBackend::starting_at(SimulatorBackend::new(1), spec, 30);
            for (k, expected) in full.iter().enumerate().skip(30) {
                let scales = resumed.cursor.scales_at(k as u64);
                assert_eq!(scales, *expected, "{drift:?} job {k}");
            }
        }
    }

    #[test]
    fn cursor_matches_executed_backend_bitwise() {
        // The cursor IS the drift the backend applies: a probe backend
        // recording apply_drift calls must see exactly the cursor's
        // trajectory, for every model.
        #[derive(Debug)]
        struct Probe {
            inner: SimulatorBackend,
            applied: Vec<(f64, f64)>,
        }
        impl QuantumBackend for Probe {
            fn name(&self) -> &str {
                self.inner.name()
            }
            fn n_qubits(&self) -> usize {
                self.inner.n_qubits()
            }
            fn validate(&self, circuit: &Circuit) -> Result<(), BackendError> {
                self.inner.validate(circuit)
            }
            fn execute(
                &mut self,
                circuit: &Circuit,
                shots: Option<usize>,
            ) -> Result<Measurements, BackendError> {
                self.inner.execute(circuit, shots)
            }
            fn apply_drift(&mut self, gate_scale: f64, readout_scale: f64) {
                self.applied.push((gate_scale, readout_scale));
            }
        }
        for drift in [
            DriftModel::Linear,
            DriftModel::RandomWalk,
            DriftModel::StepRecalibration { interval: 5 },
        ] {
            let spec = drift_spec(drift, 0.3, 21);
            let probe = Probe {
                inner: SimulatorBackend::new(1),
                applied: Vec::new(),
            };
            let mut b = FaultyBackend::new(probe, spec);
            for _ in 0..40 {
                let _ = b.execute(&bell(), None);
            }
            assert_eq!(b.inner().applied, drift_trajectory(spec, 40), "{drift:?}");
        }
    }

    #[test]
    fn cursor_rewinds_deterministically_on_backwards_queries() {
        let spec = drift_spec(DriftModel::RandomWalk, 0.4, 17);
        let forward = drift_trajectory(spec, 100);
        let mut cursor = DriftCursor::new(spec);
        // Jump around: ahead, back, ahead again — every answer must match
        // the in-order trajectory bitwise.
        for &j in &[80u64, 3, 42, 42, 7, 99, 0, 55] {
            assert_eq!(cursor.scales_at(j), forward[j as usize], "job {j}");
        }
    }

    #[test]
    fn random_walk_drift_keeps_emulator_physical() {
        use crate::backend::EmulatorBackend;
        use crate::presets;
        let model = presets::yorktown().subdevice(&[0, 1]).unwrap();
        let mut b = FaultyBackend::new(
            EmulatorBackend::new(&model, 3).unwrap(),
            drift_spec(DriftModel::RandomWalk, 1.5, 11),
        );
        for job in 0..200 {
            let m = b.execute(&bell(), None).unwrap_or_else(|e| {
                panic!("job {job} failed under walk drift: {e}")
            });
            assert!(
                m.expectations.iter().all(|z| z.is_finite() && z.abs() <= 1.0 + 1e-9),
                "job {job}: {:?}",
                m.expectations
            );
        }
    }

    #[test]
    fn drift_degrades_emulator_over_jobs() {
        use crate::backend::EmulatorBackend;
        use crate::presets;
        let model = presets::santiago().subdevice(&[0, 1]).unwrap();
        let mut b = FaultyBackend::new(
            EmulatorBackend::new(&model, 0).unwrap(),
            FaultSpec {
                gate_drift_per_job: 0.5,
                readout_drift_per_job: 0.5,
                seed: 2,
                ..FaultSpec::none()
            },
        );
        let mut c = Circuit::new(2);
        c.push(Gate::x(0));
        for _ in 0..10 {
            c.push(Gate::sx(0));
            c.push(Gate::sx(0));
        }
        let early = b.execute(&c, None).unwrap().expectations[0];
        for _ in 0..8 {
            let _ = b.execute(&c, None);
        }
        let late = b.execute(&c, None).unwrap().expectations[0];
        assert!(
            late.abs() < early.abs(),
            "drift contracts |Z| over jobs: {late} vs {early}"
        );
    }
}
