//! Fault injection for deployment-pipeline robustness testing.
//!
//! [`FaultyBackend`] decorates any [`QuantumBackend`] with the failure
//! modes real cloud QPUs exhibit: transient job rejections, queue
//! timeouts, shot-budget truncation, and calibration drift (readout and
//! gate error rates creeping up with every job since the last
//! calibration). Faults are *seed-deterministic per job index*: whether
//! job `k` fails depends only on `(spec.seed, k)`, never on how many
//! retries earlier jobs needed, so fault sweeps and regression tests are
//! exactly reproducible.

use crate::backend::{BackendError, Measurements, QuantumBackend};
use qnat_sim::circuit::Circuit;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configurable fault rates and drift slopes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Probability a job fails transiently (retry may succeed).
    pub transient_failure_rate: f64,
    /// Probability a job times out in the queue (retry may succeed).
    pub timeout_rate: f64,
    /// Probability a finite-shot job comes back with a truncated budget.
    pub shot_truncation_rate: f64,
    /// Fraction of the requested shots delivered when truncated.
    pub shot_truncation_factor: f64,
    /// Readout error scale grows by this per job index (calibration
    /// drift): job `k` runs at scale `1 + k·rate`. Drifted error
    /// probabilities are clamped into `[0, 1]` by the device model, so
    /// arbitrarily long runs saturate instead of producing invalid
    /// channels.
    pub readout_drift_per_job: f64,
    /// Gate error scale grows by this per job index (same clamping).
    pub gate_drift_per_job: f64,
    /// Seed of the per-job fault schedule.
    pub seed: u64,
}

impl FaultSpec {
    /// A fault-free specification (the decorator becomes transparent).
    pub fn none() -> FaultSpec {
        FaultSpec {
            transient_failure_rate: 0.0,
            timeout_rate: 0.0,
            shot_truncation_rate: 0.0,
            shot_truncation_factor: 0.25,
            readout_drift_per_job: 0.0,
            gate_drift_per_job: 0.0,
            seed: 0,
        }
    }

    /// Only transient failures, at the given rate.
    pub fn transient(rate: f64, seed: u64) -> FaultSpec {
        FaultSpec {
            transient_failure_rate: rate,
            seed,
            ..FaultSpec::none()
        }
    }

    /// `true` when any drift slope is non-zero.
    pub fn has_drift(&self) -> bool {
        self.readout_drift_per_job != 0.0 || self.gate_drift_per_job != 0.0
    }
}

/// SplitMix64 — decorrelates consecutive job indices into independent
/// per-job seeds.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A backend decorator injecting seed-deterministic faults.
#[derive(Debug, Clone)]
pub struct FaultyBackend<B> {
    inner: B,
    spec: FaultSpec,
    job_index: u64,
}

impl<B: QuantumBackend> FaultyBackend<B> {
    /// Wraps `inner` with the fault schedule of `spec`.
    pub fn new(inner: B, spec: FaultSpec) -> Self {
        FaultyBackend {
            inner,
            spec,
            job_index: 0,
        }
    }

    /// Number of jobs submitted so far (attempts count: every `execute`
    /// call is one job).
    pub fn jobs_submitted(&self) -> u64 {
        self.job_index
    }

    /// The fault specification.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// Read access to the wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// The RNG deciding job `k`'s faults — a pure function of
    /// `(spec.seed, k)`.
    fn fault_rng(&self, job: u64) -> StdRng {
        StdRng::seed_from_u64(splitmix64(self.spec.seed ^ splitmix64(job)))
    }
}

impl<B: QuantumBackend> QuantumBackend for FaultyBackend<B> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn n_qubits(&self) -> usize {
        self.inner.n_qubits()
    }

    fn validate(&self, circuit: &Circuit) -> Result<(), BackendError> {
        self.inner.validate(circuit)
    }

    fn execute(
        &mut self,
        circuit: &Circuit,
        shots: Option<usize>,
    ) -> Result<Measurements, BackendError> {
        let job = self.job_index;
        self.job_index += 1;
        let mut rng = self.fault_rng(job);
        if self.spec.has_drift() {
            let k = job as f64;
            self.inner.apply_drift(
                (1.0 + k * self.spec.gate_drift_per_job).max(0.0),
                (1.0 + k * self.spec.readout_drift_per_job).max(0.0),
            );
        }
        // Fault rolls happen in a fixed order so the schedule is stable
        // under spec-rate changes of later faults.
        if rng.gen_bool(self.spec.transient_failure_rate.clamp(0.0, 1.0)) {
            return Err(BackendError::TransientFailure {
                job,
                reason: "injected transient fault".into(),
            });
        }
        if rng.gen_bool(self.spec.timeout_rate.clamp(0.0, 1.0)) {
            return Err(BackendError::QueueTimeout {
                job,
                waited_ms: rng.gen_range(10_000..120_000),
            });
        }
        let effective_shots = match shots {
            Some(s) if rng.gen_bool(self.spec.shot_truncation_rate.clamp(0.0, 1.0)) => {
                Some(((s as f64 * self.spec.shot_truncation_factor) as usize).max(1))
            }
            other => other,
        };
        self.inner.execute(circuit, effective_shots)
    }

    fn apply_drift(&mut self, gate_scale: f64, readout_scale: f64) {
        self.inner.apply_drift(gate_scale, readout_scale);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::SimulatorBackend;
    use qnat_sim::gate::Gate;

    fn bell() -> Circuit {
        let mut c = Circuit::new(2);
        c.push(Gate::h(0));
        c.push(Gate::cx(0, 1));
        c
    }

    fn run_schedule(spec: FaultSpec, jobs: usize) -> Vec<bool> {
        let mut b = FaultyBackend::new(SimulatorBackend::new(1), spec);
        (0..jobs).map(|_| b.execute(&bell(), None).is_ok()).collect()
    }

    #[test]
    fn fault_free_spec_is_transparent() {
        let mut plain = SimulatorBackend::new(1);
        let mut wrapped = FaultyBackend::new(SimulatorBackend::new(1), FaultSpec::none());
        let a = plain.execute(&bell(), Some(512)).unwrap();
        let b = wrapped.execute(&bell(), Some(512)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn schedule_is_seed_deterministic() {
        let spec = FaultSpec::transient(0.4, 9);
        assert_eq!(run_schedule(spec, 50), run_schedule(spec, 50));
        let other = FaultSpec::transient(0.4, 10);
        assert_ne!(run_schedule(spec, 50), run_schedule(other, 50));
    }

    #[test]
    fn failure_frequency_tracks_rate() {
        let ok = run_schedule(FaultSpec::transient(0.3, 5), 1000);
        let failures = ok.iter().filter(|&&x| !x).count();
        assert!((200..400).contains(&failures), "{failures} failures");
    }

    #[test]
    fn injected_faults_are_retryable() {
        let mut b = FaultyBackend::new(
            SimulatorBackend::new(1),
            FaultSpec {
                timeout_rate: 1.0,
                ..FaultSpec::none()
            },
        );
        let err = b.execute(&bell(), None).unwrap_err();
        assert!(matches!(err, BackendError::QueueTimeout { job: 0, .. }));
        assert!(err.is_retryable());
    }

    #[test]
    fn shot_truncation_reduces_budget() {
        let mut b = FaultyBackend::new(
            SimulatorBackend::new(1),
            FaultSpec {
                shot_truncation_rate: 1.0,
                shot_truncation_factor: 0.25,
                ..FaultSpec::none()
            },
        );
        let m = b.execute(&bell(), Some(8192)).unwrap();
        assert_eq!(m.shots_used, Some(2048));
        // Exact jobs cannot be truncated.
        let m = b.execute(&bell(), None).unwrap();
        assert_eq!(m.shots_used, None);
    }

    #[test]
    fn validation_errors_pass_through_inner() {
        let mut b = FaultyBackend::new(SimulatorBackend::new(1), FaultSpec::none());
        let mut c = Circuit::new(1);
        c.push(Gate::ry(0, f64::INFINITY));
        assert!(matches!(
            b.execute(&c, None).unwrap_err(),
            BackendError::NonFiniteParameter { .. }
        ));
    }

    #[test]
    fn heavy_drift_saturates_instead_of_failing() {
        // Regression: drifted Pauli probabilities used to renormalize to a
        // sum one ulp above 1.0, so long runs (scale ≫ 1) hit non-retryable
        // InvalidChannel errors mid-run. They must clamp into [0, 1] and
        // keep serving physical expectations instead.
        use crate::backend::EmulatorBackend;
        use crate::presets;
        let model = presets::yorktown().subdevice(&[0, 1]).unwrap();
        let mut b = FaultyBackend::new(
            EmulatorBackend::new(&model, 3).unwrap(),
            FaultSpec {
                gate_drift_per_job: 2.0,
                readout_drift_per_job: 2.0,
                seed: 4,
                ..FaultSpec::none()
            },
        );
        let mut c = Circuit::new(2);
        c.push(Gate::h(0));
        c.push(Gate::cx(0, 1));
        for job in 0..400 {
            let m = b.execute(&c, None).unwrap_or_else(|e| {
                panic!("job {job} failed under heavy drift: {e}")
            });
            assert!(
                m.expectations.iter().all(|z| z.is_finite() && z.abs() <= 1.0 + 1e-9),
                "job {job} produced unphysical expectations: {:?}",
                m.expectations
            );
        }
        // The drifted model itself stays a valid probability distribution.
        let drifted = model.drifted(1e6, 1e6);
        for q in 0..drifted.n_qubits() {
            let e = drifted.single_qubit_error(q);
            assert!(e.validate().is_ok(), "qubit {q}: {e:?}");
            assert!(e.total() <= 1.0, "qubit {q} total {}", e.total());
        }
    }

    #[test]
    fn drift_degrades_emulator_over_jobs() {
        use crate::backend::EmulatorBackend;
        use crate::presets;
        let model = presets::santiago().subdevice(&[0, 1]).unwrap();
        let mut b = FaultyBackend::new(
            EmulatorBackend::new(&model, 0).unwrap(),
            FaultSpec {
                gate_drift_per_job: 0.5,
                readout_drift_per_job: 0.5,
                seed: 2,
                ..FaultSpec::none()
            },
        );
        let mut c = Circuit::new(2);
        c.push(Gate::x(0));
        for _ in 0..10 {
            c.push(Gate::sx(0));
            c.push(Gate::sx(0));
        }
        let early = b.execute(&c, None).unwrap().expectations[0];
        for _ in 0..8 {
            let _ = b.execute(&c, None);
        }
        let late = b.execute(&c, None).unwrap().expectations[0];
        assert!(
            late.abs() < early.abs(),
            "drift contracts |Z| over jobs: {late} vs {early}"
        );
    }
}
