//! Preset device noise models.
//!
//! Synthetic stand-ins for the IBMQ machines the paper evaluates on. The
//! absolute error magnitudes and their *ordering* follow the paper's
//! anchors: Yorktown's single-qubit gate error is ≈5× Santiago's (§1 and
//! Appendix A.3.1), the Yorktown SX error distribution on qubit 1 is
//! `{X: 0.00096, Y: 0.00096, Z: 0.00096}` (§3.2), Santiago's qubit-0
//! readout matrix is `[[0.984, 0.016], [0.022, 0.978]]` (§3.2), and
//! Melbourne (15 qubits, used for the 10-class tasks) is the noisiest.
//! Per-qubit heterogeneity ("the same gate on different qubits has up to
//! 10× probability difference") is modeled by a deterministic multiplier
//! pattern.

use crate::device::DeviceModel;
use crate::error_spec::PauliErrorSpec;
use crate::readout::ReadoutError;

/// Deterministic per-qubit spread multipliers, mimicking calibration
/// heterogeneity across a chip (up to ~3.6× between best and worst qubit).
const QUBIT_SPREAD: [f64; 8] = [1.0, 1.45, 0.62, 1.9, 0.85, 1.25, 0.7, 2.2];

fn spread(q: usize) -> f64 {
    QUBIT_SPREAD[q % QUBIT_SPREAD.len()]
}

/// Parameters distilled from a device's calibration summary.
struct Anchor {
    name: &'static str,
    qv: u32,
    /// Mean total single-qubit Pauli error.
    sq: f64,
    /// Mean total two-qubit Pauli error (per qubit, per gate).
    tq: f64,
    /// Readout flip probabilities (0→1, 1→0).
    ro: (f64, f64),
    /// Amplitude damping per single-qubit gate.
    t1: f64,
    /// Phase damping per single-qubit gate.
    t2: f64,
}

fn line_edges(n: usize) -> Vec<(usize, usize)> {
    (0..n - 1).map(|i| (i, i + 1)).collect()
}

fn build(anchor: Anchor, n: usize, edges: Vec<(usize, usize)>) -> DeviceModel {
    let mut b = DeviceModel::builder(anchor.name, n)
        .quantum_volume(anchor.qv)
        .tq_duration_factor(8.0);
    for q in 0..n {
        let s = spread(q);
        b = b
            .single_qubit_error(
                q,
                PauliErrorSpec::symmetric((anchor.sq * s).min(0.9))
                    .expect("preset probabilities valid"),
            )
            .readout(
                q,
                ReadoutError::asymmetric(
                    (anchor.ro.0 * s).min(0.45),
                    (anchor.ro.1 * s).min(0.45),
                )
                .expect("preset readout valid"),
            )
            .damping(q, (anchor.t1 * s).min(0.5), (anchor.t2 * s).min(0.5));
    }
    for (k, (a, bq)) in edges.into_iter().enumerate() {
        let s = spread(k + 3); // edge spread decoupled from qubit spread
        b = b.edge(
            a,
            bq,
            PauliErrorSpec::symmetric((anchor.tq * s).min(0.9)).expect("preset probabilities"),
        );
    }
    b.build().expect("preset models are valid by construction")
}

/// IBMQ-Santiago stand-in: 5-qubit line, QV 32 — the least noisy device in
/// the paper's pool.
pub fn santiago() -> DeviceModel {
    build(
        Anchor {
            name: "ibmq-santiago",
            qv: 32,
            sq: 5.8e-4,
            tq: 1.2e-2,
            ro: (0.024, 0.033),
            t1: 4.0e-4,
            t2: 6.0e-4,
        },
        5,
        line_edges(5),
    )
}

/// IBMQ-Yorktown stand-in: 5-qubit "bowtie", QV 8 — single-qubit error ≈5×
/// Santiago's (paper §1).
pub fn yorktown() -> DeviceModel {
    build(
        Anchor {
            name: "ibmq-yorktown",
            qv: 8,
            sq: 2.9e-3,
            tq: 3.1e-2,
            ro: (0.053, 0.068),
            t1: 1.6e-3,
            t2: 2.4e-3,
        },
        5,
        vec![(0, 1), (0, 2), (1, 2), (2, 3), (2, 4), (3, 4)],
    )
}

/// IBMQ-Belem stand-in: 5-qubit T topology, QV 16.
pub fn belem() -> DeviceModel {
    build(
        Anchor {
            name: "ibmq-belem",
            qv: 16,
            sq: 1.2e-3,
            tq: 2.0e-2,
            ro: (0.038, 0.048),
            t1: 8.0e-4,
            t2: 1.2e-3,
        },
        5,
        vec![(0, 1), (1, 2), (1, 3), (3, 4)],
    )
}

/// IBMQ-Athens stand-in: 5-qubit line, QV 32 (retired mid-study in the
/// paper).
pub fn athens() -> DeviceModel {
    build(
        Anchor {
            name: "ibmq-athens",
            qv: 32,
            sq: 4.0e-4,
            tq: 1.5e-2,
            ro: (0.023, 0.032),
            t1: 5.0e-4,
            t2: 7.0e-4,
        },
        5,
        line_edges(5),
    )
}

/// IBMQ-Melbourne stand-in: 15-qubit ladder, the noisiest device — used for
/// the 10-class tasks.
pub fn melbourne() -> DeviceModel {
    let mut edges = Vec::new();
    // Two rows (0..=6 and 7..=13) plus rungs and a tail qubit 14.
    for i in 0..6 {
        edges.push((i, i + 1));
        edges.push((i + 7, i + 8));
    }
    for i in 0..7 {
        edges.push((i, i + 7));
    }
    edges.push((13, 14));
    build(
        Anchor {
            name: "ibmq-melbourne",
            qv: 8,
            sq: 2.0e-3,
            tq: 4.2e-2,
            ro: (0.06, 0.082),
            t1: 1.8e-3,
            t2: 2.8e-3,
        },
        15,
        edges,
    )
}

/// IBMQ-Quito stand-in: 5-qubit T topology, QV 16.
pub fn quito() -> DeviceModel {
    build(
        Anchor {
            name: "ibmq-quito",
            qv: 16,
            sq: 1.0e-3,
            tq: 1.9e-2,
            ro: (0.045, 0.06),
            t1: 7.0e-4,
            t2: 1.0e-3,
        },
        5,
        vec![(0, 1), (1, 2), (1, 3), (3, 4)],
    )
}

/// IBMQ-Lima stand-in: 5-qubit T topology, QV 8.
pub fn lima() -> DeviceModel {
    build(
        Anchor {
            name: "ibmq-lima",
            qv: 8,
            sq: 9.0e-4,
            tq: 1.7e-2,
            ro: (0.038, 0.052),
            t1: 6.0e-4,
            t2: 9.0e-4,
        },
        5,
        vec![(0, 1), (1, 2), (1, 3), (3, 4)],
    )
}

/// IBMQ-Bogota stand-in: 5-qubit line, QV 32.
pub fn bogota() -> DeviceModel {
    build(
        Anchor {
            name: "ibmq-bogota",
            qv: 32,
            sq: 7.0e-4,
            tq: 1.5e-2,
            ro: (0.03, 0.042),
            t1: 5.0e-4,
            t2: 8.0e-4,
        },
        5,
        line_edges(5),
    )
}

/// An ideal, noise-free "device" with an all-to-all line topology — used
/// for noise-free baselines.
pub fn noise_free(n_qubits: usize) -> DeviceModel {
    let mut b = DeviceModel::builder("noise-free", n_qubits).quantum_volume(u32::MAX);
    for i in 0..n_qubits.saturating_sub(1) {
        b = b.edge(i, i + 1, PauliErrorSpec::zero());
    }
    b.build().expect("noise-free model is valid")
}

/// All real-device presets, in roughly increasing-noise order.
pub fn all_devices() -> Vec<DeviceModel> {
    vec![
        santiago(),
        athens(),
        bogota(),
        lima(),
        quito(),
        belem(),
        yorktown(),
        melbourne(),
    ]
}

/// Looks up a preset by (case-insensitive) name suffix, e.g. `"santiago"`.
pub fn by_name(name: &str) -> Option<DeviceModel> {
    let lower = name.to_lowercase();
    all_devices()
        .into_iter()
        .find(|d| d.name().ends_with(&lower))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn by_name_round_trips_every_device() {
        // Every preset must be reachable back through by_name, via its
        // full registered name, its bare suffix, and any casing — and the
        // looked-up model must be the identical calibration data.
        for dev in all_devices() {
            let full = dev.name().to_owned();
            let suffix = full.rsplit('-').next().unwrap_or(&full).to_owned();
            for query in [full.clone(), suffix.clone(), suffix.to_uppercase()] {
                let found = by_name(&query)
                    .unwrap_or_else(|| panic!("by_name({query:?}) lost {full}"));
                assert_eq!(found.name(), full, "query {query:?}");
                assert_eq!(
                    found.mean_single_qubit_error(),
                    dev.mean_single_qubit_error(),
                    "query {query:?} returned different calibration"
                );
                assert_eq!(found.n_qubits(), dev.n_qubits(), "query {query:?}");
            }
        }
        assert!(by_name("no-such-device").is_none());
    }

    #[test]
    fn yorktown_is_about_five_times_santiago() {
        let ratio = yorktown().mean_single_qubit_error() / santiago().mean_single_qubit_error();
        assert!((4.0..6.0).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn noise_ordering_matches_paper() {
        let devs = all_devices();
        // Santiago is the least noisy, Melbourne the worst.
        let errs: Vec<f64> = devs.iter().map(|d| d.mean_single_qubit_error()).collect();
        assert!(errs[0] < errs[errs.len() - 2]);
        // Yorktown has the worst single-qubit gates (5× Santiago, paper §1);
        // Melbourne has the worst two-qubit gates and readout.
        let worst_sq = devs
            .iter()
            .max_by(|a, b| {
                a.mean_single_qubit_error()
                    .total_cmp(&b.mean_single_qubit_error())
            })
            .unwrap();
        assert_eq!(worst_sq.name(), "ibmq-yorktown");
        let worst_tq = devs
            .iter()
            .max_by(|a, b| a.mean_two_qubit_error().total_cmp(&b.mean_two_qubit_error()))
            .unwrap();
        assert_eq!(worst_tq.name(), "ibmq-melbourne");
    }

    #[test]
    fn all_presets_validate_and_serialize() {
        for d in all_devices() {
            d.validate().unwrap();
            let back = DeviceModel::from_json(&d.to_json()).unwrap();
            assert_eq!(d, back);
        }
    }

    #[test]
    fn melbourne_has_15_qubits() {
        assert_eq!(melbourne().n_qubits(), 15);
    }

    #[test]
    fn qubit_heterogeneity_is_present() {
        let d = santiago();
        let e0 = d.single_qubit_error(0).total();
        let e3 = d.single_qubit_error(3).total();
        assert!((e3 / e0 - 1.9).abs() < 1e-9);
    }

    #[test]
    fn by_name_lookup() {
        assert!(by_name("santiago").is_some());
        assert!(by_name("Yorktown").is_some());
        assert!(by_name("osaka").is_none());
    }

    #[test]
    fn noise_free_has_zero_errors() {
        let d = noise_free(4);
        assert_eq!(d.mean_single_qubit_error(), 0.0);
        assert_eq!(d.mean_two_qubit_error(), 0.0);
        assert_eq!(d.mean_readout_error(), 0.0);
    }
}
