//! Density-matrix hardware emulator — the "real quantum computer" stand-in.
//!
//! Runs a circuit exactly on the density-matrix simulator while applying,
//! after every physical gate, the device's Pauli error channel *and*
//! amplitude/phase damping (which the Pauli-twirled training model does not
//! capture — this is precisely the model/reality gap Table 11 measures).
//! Measurement applies the per-qubit readout confusion and optionally
//! finite-shot sampling.
//!
//! All entry points are fallible: an oversized circuit or an invalid
//! channel spec surfaces as a typed [`BackendError`] instead of a panic, so
//! the deployment pipeline can report and recover.

use crate::backend::BackendError;
use crate::device::DeviceModel;
use qnat_sim::channel::Channel1;
use qnat_sim::circuit::Circuit;
use qnat_sim::density::DensityMatrix;
use qnat_sim::measure::sampled_expect_all_z;
use rand::Rng;

/// A hardware emulator bound to a device model.
#[derive(Debug, Clone)]
pub struct HardwareEmulator {
    model: DeviceModel,
}

impl HardwareEmulator {
    /// Creates an emulator for `model`.
    pub fn new(model: DeviceModel) -> Self {
        HardwareEmulator { model }
    }

    /// The underlying device model.
    pub fn model(&self) -> &DeviceModel {
        &self.model
    }

    fn check_size(&self, circuit: &Circuit) -> Result<(), BackendError> {
        if circuit.n_qubits() > self.model.n_qubits() {
            return Err(BackendError::QubitCount {
                needed: circuit.n_qubits(),
                available: self.model.n_qubits(),
                backend: self.model.name().to_string(),
            });
        }
        Ok(())
    }

    /// Runs `circuit` with full noise (gate Pauli channels + damping) and
    /// returns the final mixed state. Readout error is *not* applied here —
    /// see [`HardwareEmulator::measure_probabilities`].
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::QubitCount`] if the circuit uses more qubits
    /// than the device has, or [`BackendError::InvalidChannel`] if the
    /// device model yields an invalid noise channel.
    pub fn run(&self, circuit: &Circuit) -> Result<DensityMatrix, BackendError> {
        self.check_size(circuit)?;
        let mut rho = DensityMatrix::zero_state(circuit.n_qubits());
        for g in circuit.gates() {
            rho.apply_gate(g);
            // Pauli (twirled) gate error on each affected qubit.
            for (q, spec) in self.model.gate_errors(g) {
                if spec.total() > 0.0 {
                    let ch = Channel1::pauli(spec.p_x, spec.p_y, spec.p_z)?;
                    rho.apply_channel1(q, &ch);
                }
            }
            // Decoherence over the gate duration (both qubits of a 2q gate,
            // scaled by the longer duration).
            let dur = if g.arity() == 2 {
                self.model.tq_duration_factor()
            } else {
                1.0
            };
            for k in 0..g.arity() {
                let q = g.qubits[k];
                let ad = (self.model.amp_damping(q) * dur).min(1.0);
                let pd = (self.model.phase_damping(q) * dur).min(1.0);
                if ad > 0.0 {
                    rho.apply_channel1(q, &Channel1::amplitude_damping(ad)?);
                }
                if pd > 0.0 {
                    rho.apply_channel1(q, &Channel1::phase_damping(pd)?);
                }
            }
        }
        Ok(rho)
    }

    /// Final measurement distribution including readout confusion.
    ///
    /// # Errors
    ///
    /// Propagates [`HardwareEmulator::run`] errors.
    pub fn measure_probabilities(&self, circuit: &Circuit) -> Result<Vec<f64>, BackendError> {
        let rho = self.run(circuit)?;
        let mut probs = rho.probabilities();
        for q in 0..circuit.n_qubits() {
            self.model
                .readout_error(q)
                .apply_to_distribution(&mut probs, q);
        }
        Ok(probs)
    }

    /// Exact noisy Z expectations per qubit (infinite-shot limit), readout
    /// error included.
    ///
    /// # Errors
    ///
    /// Propagates [`HardwareEmulator::run`] errors.
    pub fn expect_all_z(&self, circuit: &Circuit) -> Result<Vec<f64>, BackendError> {
        let probs = self.measure_probabilities(circuit)?;
        let n = circuit.n_qubits();
        let mut p1 = vec![0.0f64; n];
        for (i, &w) in probs.iter().enumerate() {
            for (q, p) in p1.iter_mut().enumerate() {
                if i & (1 << q) != 0 {
                    *p += w;
                }
            }
        }
        Ok(p1.into_iter().map(|p| 1.0 - 2.0 * p).collect())
    }

    /// Shot-sampled noisy Z expectations per qubit (the paper uses
    /// `shots = 8192`).
    ///
    /// # Errors
    ///
    /// Propagates [`HardwareEmulator::run`] errors; returns
    /// [`BackendError::ShotBudget`] for `shots == 0`.
    pub fn sampled_expect_all_z<R: Rng>(
        &self,
        circuit: &Circuit,
        shots: usize,
        rng: &mut R,
    ) -> Result<Vec<f64>, BackendError> {
        if shots == 0 {
            return Err(BackendError::ShotBudget { requested: 0 });
        }
        let probs = self.measure_probabilities(circuit)?;
        Ok(sampled_expect_all_z(&probs, circuit.n_qubits(), shots, rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use qnat_sim::gate::Gate;
    use qnat_sim::statevector::simulate;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn test_circuit() -> Circuit {
        let mut c = Circuit::new(2);
        c.push(Gate::ry(0, 0.8));
        c.push(Gate::sx(1));
        c.push(Gate::cx(0, 1));
        c.push(Gate::rz(1, 0.4));
        c
    }

    #[test]
    fn noise_free_emulator_matches_statevector() {
        let c = test_circuit();
        let emu = HardwareEmulator::new(presets::noise_free(2));
        let noisy = emu.expect_all_z(&c).unwrap();
        let psi = simulate(&c);
        for q in 0..2 {
            assert!((noisy[q] - psi.expect_z(q)).abs() < 1e-10);
        }
    }

    #[test]
    fn noisier_device_contracts_expectations_more() {
        // |⟨Z⟩| under noise shrinks toward 0 (γ < 1 in Theorem 3.1), and a
        // noisier device shrinks it more.
        let mut c = Circuit::new(1);
        c.push(Gate::x(0));
        for _ in 0..10 {
            c.push(Gate::sx(0));
            c.push(Gate::sx(0));
            c.push(Gate::sx(0));
            c.push(Gate::sx(0)); // four SX = identity, but noisy
        }
        let ideal = simulate(&c).expect_z(0);
        let z_sant = HardwareEmulator::new(presets::santiago())
            .expect_all_z(&c)
            .unwrap()[0];
        let z_york = HardwareEmulator::new(presets::yorktown())
            .expect_all_z(&c)
            .unwrap()[0];
        assert!((ideal + 1.0).abs() < 1e-10);
        assert!(z_sant > ideal, "santiago contracts |Z|");
        assert!(z_york > z_sant, "yorktown noisier than santiago");
    }

    #[test]
    fn trace_preserved_under_full_noise() {
        let c = test_circuit();
        for model in [presets::yorktown(), presets::melbourne()] {
            let emu = HardwareEmulator::new(model);
            let rho = emu.run(&c).unwrap();
            assert!((rho.trace() - 1.0).abs() < 1e-9);
            assert!(rho.hermiticity_error() < 1e-9);
        }
    }

    #[test]
    fn measurement_distribution_normalized() {
        let c = test_circuit();
        let emu = HardwareEmulator::new(presets::belem());
        let probs = emu.measure_probabilities(&c).unwrap();
        let total: f64 = probs.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(probs.iter().all(|&p| p >= -1e-12));
    }

    #[test]
    fn sampled_expectations_converge_to_exact() {
        let c = test_circuit();
        let emu = HardwareEmulator::new(presets::santiago());
        let exact = emu.expect_all_z(&c).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let sampled = emu.sampled_expect_all_z(&c, 50_000, &mut rng).unwrap();
        for q in 0..2 {
            assert!(
                (sampled[q] - exact[q]).abs() < 0.03,
                "q{q}: {} vs {}",
                sampled[q],
                exact[q]
            );
        }
    }

    #[test]
    fn oversized_circuit_is_typed_error() {
        let c = Circuit::new(6);
        let err = HardwareEmulator::new(presets::santiago())
            .run(&c)
            .unwrap_err();
        assert!(matches!(
            err,
            BackendError::QubitCount {
                needed: 6,
                available: 5,
                ..
            }
        ));
        assert!(!err.is_retryable());
    }

    #[test]
    fn zero_shots_is_typed_error() {
        let c = test_circuit();
        let emu = HardwareEmulator::new(presets::santiago());
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(
            emu.sampled_expect_all_z(&c, 0, &mut rng).unwrap_err(),
            BackendError::ShotBudget { requested: 0 }
        );
    }
}
