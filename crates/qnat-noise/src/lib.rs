//! # qnat-noise — realistic device noise models for QuantumNAT
//!
//! This crate plays the role of the IBMQ calibration data the paper
//! consumes: Pauli-twirled per-gate error distributions
//! ([`error_spec::PauliErrorSpec`]), per-qubit readout confusion matrices
//! ([`readout::ReadoutError`]), full device models with topology and
//! decoherence ([`device::DeviceModel`]), preset machines matching the
//! paper's pool ([`presets`]), the error-gate insertion sampler used for
//! noise-injected training ([`inject`]) and a density-matrix hardware
//! emulator used as the "real QC" for deployment evaluation
//! ([`emulator::HardwareEmulator`]).
//!
//! ## Example
//!
//! ```
//! use qnat_noise::{presets, emulator::HardwareEmulator};
//! use qnat_sim::{circuit::Circuit, gate::Gate};
//!
//! let mut c = Circuit::new(2);
//! c.push(Gate::h(0));
//! c.push(Gate::cx(0, 1));
//! let emu = HardwareEmulator::new(presets::santiago());
//! let z = emu.expect_all_z(&c).unwrap();
//! assert!(z[0].abs() < 0.1); // Bell state measures near zero
//! ```

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod backend;
pub mod device;
pub mod emulator;
pub mod error_spec;
pub mod fault;
pub mod inject;
pub mod presets;
pub mod readout;
pub mod trajectory;

pub use backend::{
    BackendError, EmulatorBackend, Measurements, NoiseModelBackend, QuantumBackend,
    SimulatorBackend,
};
pub use device::DeviceModel;
pub use emulator::HardwareEmulator;
pub use error_spec::PauliErrorSpec;
pub use fault::{DriftCursor, DriftModel, FaultSpec, FaultyBackend};
pub use readout::ReadoutError;
pub use trajectory::TrajectoryEmulator;
