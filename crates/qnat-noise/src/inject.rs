//! Error-gate insertion (the paper's noise-injection mechanism, §3.2).
//!
//! For each gate of a (basis-compiled) circuit, a Pauli error gate is
//! sampled from the device's error distribution `E` — scaled by the noise
//! factor `T` — and inserted *after* the gate; two-qubit gates may receive
//! error gates on one or both of their qubits. A fresh set of error gates is
//! sampled for every training step.

use crate::device::DeviceModel;
use crate::error_spec::PauliError;
use qnat_sim::circuit::Circuit;
use qnat_sim::gate::Gate;
use rand::Rng;

/// Statistics of one injection pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InjectionStats {
    /// Gates in the original circuit.
    pub original_gates: usize,
    /// Pauli error gates inserted.
    pub inserted_gates: usize,
}

impl InjectionStats {
    /// Fractional circuit-size overhead of the insertion (paper reports
    /// typically < 2%).
    pub fn overhead(&self) -> f64 {
        if self.original_gates == 0 {
            0.0
        } else {
            self.inserted_gates as f64 / self.original_gates as f64
        }
    }
}

fn error_gate(e: PauliError, q: usize) -> Option<Gate> {
    match e {
        PauliError::None => None,
        PauliError::X => Some(Gate::x(q)),
        PauliError::Y => Some(Gate::y(q)),
        PauliError::Z => Some(Gate::z(q)),
    }
}

/// Samples Pauli error gates for `circuit` from `model` (error probabilities
/// scaled by `noise_factor`) and returns the noise-injected circuit together
/// with insertion statistics.
///
/// # Examples
///
/// ```
/// use qnat_noise::{presets, inject::insert_error_gates};
/// use qnat_sim::{circuit::Circuit, gate::Gate};
/// use rand::SeedableRng;
///
/// let mut c = Circuit::new(2);
/// c.push(Gate::sx(0));
/// c.push(Gate::cx(0, 1));
/// let model = presets::yorktown();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let (noisy, stats) = insert_error_gates(&c, &model, 1.0, &mut rng);
/// assert!(noisy.len() >= c.len());
/// assert!(stats.inserted_gates <= 3); // at most one error per gate qubit
/// ```
pub fn insert_error_gates<R: Rng>(
    circuit: &Circuit,
    model: &DeviceModel,
    noise_factor: f64,
    rng: &mut R,
) -> (Circuit, InjectionStats) {
    let mut out = Circuit::new(circuit.n_qubits());
    let mut stats = InjectionStats {
        original_gates: circuit.len(),
        inserted_gates: 0,
    };
    for g in circuit.gates() {
        out.push(*g);
        for (q, spec) in model.gate_errors(g) {
            if let Some(eg) = error_gate(spec.scaled(noise_factor).sample(rng), q) {
                out.push(eg);
                stats.inserted_gates += 1;
            }
        }
    }
    (out, stats)
}

/// Expected insertion overhead of a circuit under a model (analytic, no
/// sampling): the mean number of error gates per original gate.
pub fn expected_overhead(circuit: &Circuit, model: &DeviceModel, noise_factor: f64) -> f64 {
    if circuit.is_empty() {
        return 0.0;
    }
    let expected: f64 = circuit
        .gates()
        .iter()
        .flat_map(|g| model.gate_errors(g))
        .map(|(_, spec)| spec.scaled(noise_factor).total())
        .sum();
    expected / circuit.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_circuit() -> Circuit {
        let mut c = Circuit::new(3);
        for q in 0..3 {
            c.push(Gate::sx(q));
            c.push(Gate::rz(q, 0.3));
            c.push(Gate::x(q));
        }
        c.push(Gate::cx(0, 1));
        c.push(Gate::cx(1, 2));
        c
    }

    #[test]
    fn zero_noise_factor_inserts_nothing() {
        let c = sample_circuit();
        let model = presets::yorktown();
        let mut rng = StdRng::seed_from_u64(1);
        let (noisy, stats) = insert_error_gates(&c, &model, 0.0, &mut rng);
        assert_eq!(noisy.len(), c.len());
        assert_eq!(stats.inserted_gates, 0);
    }

    #[test]
    fn insertion_rate_tracks_expectation() {
        let c = sample_circuit();
        let model = presets::yorktown();
        let expect = expected_overhead(&c, &model, 1.0);
        let mut rng = StdRng::seed_from_u64(2);
        let trials = 20_000;
        let mut total = 0usize;
        for _ in 0..trials {
            let (_, stats) = insert_error_gates(&c, &model, 1.0, &mut rng);
            total += stats.inserted_gates;
        }
        let measured = total as f64 / (trials * c.len()) as f64;
        assert!(
            (measured - expect).abs() < 0.2 * expect + 1e-4,
            "measured {measured} vs expected {expect}"
        );
    }

    #[test]
    fn overhead_is_small_for_realistic_models() {
        // Paper: insertion overhead typically < 2%.
        let c = sample_circuit();
        for model in presets::all_devices() {
            let o = expected_overhead(&c, &model, 1.0);
            assert!(o < 0.05, "{}: overhead {o}", model.name());
        }
    }

    #[test]
    fn noise_factor_scales_overhead_linearly() {
        let c = sample_circuit();
        let model = presets::belem();
        let o1 = expected_overhead(&c, &model, 0.5);
        let o2 = expected_overhead(&c, &model, 1.5);
        assert!((o2 / o1 - 3.0).abs() < 1e-9);
    }

    #[test]
    fn original_gate_order_preserved() {
        let c = sample_circuit();
        let model = presets::melbourne();
        let mut rng = StdRng::seed_from_u64(3);
        let (noisy, _) = insert_error_gates(&c, &model, 1.5, &mut rng);
        // The subsequence of non-Pauli-error gates equals the original.
        let mut orig_iter = c.gates().iter();
        let mut matched = 0;
        for g in noisy.gates() {
            if let Some(o) = orig_iter.clone().next() {
                if g == o {
                    orig_iter.next();
                    matched += 1;
                }
            }
        }
        assert_eq!(matched, c.len());
    }
}
