//! Fallible quantum execution backends.
//!
//! Deployment treats a quantum processor as an unreliable remote service:
//! jobs can be rejected (bad circuit), fail transiently (calibration in
//! progress, queue hiccups), time out, or come back with a truncated shot
//! budget. [`QuantumBackend`] is the object-safe interface the resilient
//! executor in `qnat-core` drives; every implementation returns typed
//! [`BackendError`]s instead of panicking, and [`BackendError::is_retryable`]
//! tells the executor whether a retry can possibly help.
//!
//! Three backends mirror the paper's evaluation columns:
//! [`SimulatorBackend`] (ideal statevector), [`NoiseModelBackend`] (the
//! Pauli-twirled calibration model — Table 11's "noise model" column, and
//! the graceful-degradation fallback) and [`EmulatorBackend`] (the full
//! density-matrix hardware emulator standing in for the real QC).

use crate::device::DeviceModel;
use crate::emulator::HardwareEmulator;
use crate::trajectory::TrajectoryEmulator;
use qnat_sim::channel::InvalidChannelError;
use qnat_sim::circuit::Circuit;
use qnat_sim::measure::sampled_expect_all_z;
use qnat_sim::statevector::StateVector;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::error::Error;
use std::fmt;

/// Window registers up to this size use the exact density-matrix emulator;
/// larger ones fall back to Monte-Carlo trajectories.
pub const DENSITY_MATRIX_LIMIT: usize = 7;

/// Default trajectory count for large-register emulation.
pub const DEFAULT_TRAJECTORIES: usize = 48;

/// Qubit registers beyond this are rejected by the statevector simulator
/// (2ⁿ amplitudes stop fitting in memory long before usize overflows).
pub const SIMULATOR_QUBIT_LIMIT: usize = 24;

/// Typed failure modes of quantum circuit execution.
#[derive(Debug, Clone, PartialEq)]
pub enum BackendError {
    /// The circuit needs more qubits than the backend provides.
    QubitCount {
        /// Qubits the circuit uses.
        needed: usize,
        /// Qubits the backend has.
        available: usize,
        /// Backend name for diagnostics.
        backend: String,
    },
    /// A two-qubit gate addresses a pair that is not coupled on the device
    /// (the circuit was not routed for this topology).
    UnmappedTwoQubitGate {
        /// Index of the offending gate in the circuit.
        gate_index: usize,
        /// First qubit.
        a: usize,
        /// Second qubit.
        b: usize,
    },
    /// A gate parameter is NaN or infinite.
    NonFiniteParameter {
        /// Index of the offending gate in the circuit.
        gate_index: usize,
        /// Parameter slot within the gate.
        slot: usize,
    },
    /// A requested shot budget of zero.
    ShotBudget {
        /// The (invalid) requested shot count.
        requested: usize,
    },
    /// The device model produced an invalid noise channel.
    InvalidChannel {
        /// Human-readable reason.
        reason: String,
    },
    /// Backend configuration error (e.g. zero trajectories).
    InvalidConfig {
        /// Human-readable reason.
        reason: String,
    },
    /// The job failed transiently (calibration run, network blip); worth
    /// retrying.
    TransientFailure {
        /// Job index on the backend.
        job: u64,
        /// Human-readable reason.
        reason: String,
    },
    /// The job sat in the queue past its deadline; worth retrying.
    QueueTimeout {
        /// Job index on the backend.
        job: u64,
        /// Simulated time spent waiting, in milliseconds.
        waited_ms: u64,
    },
    /// The job's deadline budget ran out before the next retry backoff
    /// could be paid — the executor gave up within its wall-clock cap
    /// instead of blowing past it. Not retryable: the budget is gone.
    DeadlineExceeded {
        /// Job index on the executor when the budget ran out.
        job: u64,
        /// The backoff interval (ms) the budget could no longer cover.
        needed_ms: u64,
    },
    /// The fleet health layer short-circuited the job because the
    /// primary's circuit breaker is open and no fallback could serve it.
    CircuitOpen {
        /// Name of the backend whose breaker is open.
        backend: String,
    },
    /// The serving layer refused or evicted the job under load — queue
    /// admission shed it, or a newer submission displaced it under a
    /// shed-oldest backpressure policy. Not retryable as-is: the caller
    /// should back off and resubmit.
    Overloaded {
        /// Human-readable reason (which queue/lane and why).
        reason: String,
    },
}

impl BackendError {
    /// `true` for failures where a retry can possibly succeed (transient
    /// faults and timeouts); `false` for deterministic rejections such as
    /// validation errors, which would fail identically every attempt.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            BackendError::TransientFailure { .. } | BackendError::QueueTimeout { .. }
        )
    }

    /// Rebinds the job index carried by job-scoped variants; other
    /// variants pass through unchanged. The batch layer uses this to remap
    /// executor-local indices (always 0 — one executor per job) to
    /// batch-global ones, keeping surfaced errors attributable.
    #[must_use]
    pub fn with_job(self, job: u64) -> Self {
        match self {
            BackendError::TransientFailure { reason, .. } => {
                BackendError::TransientFailure { job, reason }
            }
            BackendError::QueueTimeout { waited_ms, .. } => {
                BackendError::QueueTimeout { job, waited_ms }
            }
            BackendError::DeadlineExceeded { needed_ms, .. } => {
                BackendError::DeadlineExceeded { job, needed_ms }
            }
            other => other,
        }
    }
}

impl fmt::Display for BackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendError::QubitCount {
                needed,
                available,
                backend,
            } => write!(
                f,
                "circuit needs {needed} qubits, backend {backend} has {available}"
            ),
            BackendError::UnmappedTwoQubitGate { gate_index, a, b } => write!(
                f,
                "gate {gate_index} acts on uncoupled pair ({a}, {b}); route the circuit first"
            ),
            BackendError::NonFiniteParameter { gate_index, slot } => write!(
                f,
                "gate {gate_index} parameter {slot} is not finite"
            ),
            BackendError::ShotBudget { requested } => {
                write!(f, "shot budget must be positive, got {requested}")
            }
            BackendError::InvalidChannel { reason } => {
                write!(f, "invalid noise channel: {reason}")
            }
            BackendError::InvalidConfig { reason } => {
                write!(f, "invalid backend configuration: {reason}")
            }
            BackendError::TransientFailure { job, reason } => {
                write!(f, "transient failure on job {job}: {reason}")
            }
            BackendError::QueueTimeout { job, waited_ms } => {
                write!(f, "job {job} timed out after {waited_ms} ms in queue")
            }
            BackendError::DeadlineExceeded { job, needed_ms } => {
                write!(
                    f,
                    "job {job} deadline exceeded: {needed_ms} ms backoff over budget"
                )
            }
            BackendError::CircuitOpen { backend } => {
                write!(f, "circuit breaker open for backend {backend}")
            }
            BackendError::Overloaded { reason } => {
                write!(f, "serving layer overloaded: {reason}")
            }
        }
    }
}

impl Error for BackendError {}

impl From<InvalidChannelError> for BackendError {
    fn from(e: InvalidChannelError) -> Self {
        BackendError::InvalidChannel {
            reason: e.to_string(),
        }
    }
}

/// Measurement outcomes of one executed job.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurements {
    /// Per-qubit Z expectations (readout error included where the backend
    /// models it).
    pub expectations: Vec<f64>,
    /// Shots actually executed — may be less than requested under
    /// shot-budget truncation. `None` means exact (infinite-shot)
    /// expectations.
    pub shots_used: Option<usize>,
}

/// Validates a circuit against a register size and (optionally) a coupling
/// map, returning the typed error the deployment pipeline surfaces.
///
/// # Errors
///
/// Returns [`BackendError::QubitCount`], [`BackendError::NonFiniteParameter`]
/// or [`BackendError::UnmappedTwoQubitGate`].
pub fn validate_circuit(
    circuit: &Circuit,
    n_qubits: usize,
    backend: &str,
    coupling: Option<&DeviceModel>,
) -> Result<(), BackendError> {
    if circuit.n_qubits() > n_qubits {
        return Err(BackendError::QubitCount {
            needed: circuit.n_qubits(),
            available: n_qubits,
            backend: backend.to_string(),
        });
    }
    for (gi, g) in circuit.gates().iter().enumerate() {
        for slot in 0..g.kind.param_count() {
            if !g.params[slot].is_finite() {
                return Err(BackendError::NonFiniteParameter {
                    gate_index: gi,
                    slot,
                });
            }
        }
        if let Some(model) = coupling {
            if g.arity() == 2 && !model.are_coupled(g.qubits[0], g.qubits[1]) {
                return Err(BackendError::UnmappedTwoQubitGate {
                    gate_index: gi,
                    a: g.qubits[0],
                    b: g.qubits[1],
                });
            }
        }
    }
    Ok(())
}

/// An unreliable quantum execution service (object-safe).
///
/// `execute` takes `&mut self` because physical backends hold sampling RNG
/// state and a job counter; determinism is per-backend-seed, not global.
///
/// The `Send` supertrait lets `Box<dyn QuantumBackend>` trait objects (and
/// the executors that own them) move into worker threads — the batch
/// executor in `qnat-core` fans jobs out across a `std::thread` pool.
pub trait QuantumBackend: Send {
    /// Backend name for reports and error messages.
    fn name(&self) -> &str;

    /// Register size the backend accepts.
    fn n_qubits(&self) -> usize;

    /// Checks a circuit without running it.
    ///
    /// # Errors
    ///
    /// Returns the typed validation errors of [`validate_circuit`].
    fn validate(&self, circuit: &Circuit) -> Result<(), BackendError> {
        validate_circuit(circuit, self.n_qubits(), self.name(), None)
    }

    /// Runs a circuit and measures all qubits in the Z basis.
    /// `shots = None` requests exact expectations.
    ///
    /// # Errors
    ///
    /// Returns a [`BackendError`]; check [`BackendError::is_retryable`]
    /// before giving up.
    fn execute(
        &mut self,
        circuit: &Circuit,
        shots: Option<usize>,
    ) -> Result<Measurements, BackendError>;

    /// Applies calibration-drift scale factors (gate errors, readout
    /// errors). Backends without a physical noise model ignore this.
    fn apply_drift(&mut self, gate_scale: f64, readout_scale: f64) {
        let _ = (gate_scale, readout_scale);
    }
}

fn check_shots(shots: Option<usize>) -> Result<(), BackendError> {
    match shots {
        Some(0) => Err(BackendError::ShotBudget { requested: 0 }),
        _ => Ok(()),
    }
}

/// Ideal statevector simulation — the "noise-free" column.
#[derive(Debug, Clone)]
pub struct SimulatorBackend {
    max_qubits: usize,
    rng: StdRng,
}

impl SimulatorBackend {
    /// Creates a simulator; `seed` drives finite-shot sampling.
    pub fn new(seed: u64) -> Self {
        SimulatorBackend {
            max_qubits: SIMULATOR_QUBIT_LIMIT,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl QuantumBackend for SimulatorBackend {
    fn name(&self) -> &str {
        "statevector-simulator"
    }

    fn n_qubits(&self) -> usize {
        self.max_qubits
    }

    fn execute(
        &mut self,
        circuit: &Circuit,
        shots: Option<usize>,
    ) -> Result<Measurements, BackendError> {
        self.validate(circuit)?;
        check_shots(shots)?;
        let mut psi = StateVector::zero_state(circuit.n_qubits());
        // `validate` already bounds the register, but route the simulator's
        // own mismatch check through the typed error path rather than a
        // panic — defense in depth for release builds.
        psi.try_run(circuit).map_err(|e| BackendError::QubitCount {
            needed: e.circuit_qubits,
            available: e.state_qubits,
            backend: self.name().to_string(),
        })?;
        let expectations = match shots {
            None => psi.expect_all_z(),
            Some(s) => {
                let probs = psi.probabilities();
                sampled_expect_all_z(&probs, circuit.n_qubits(), s, &mut self.rng)
            }
        };
        Ok(Measurements {
            expectations,
            shots_used: shots,
        })
    }
}

/// How a device-model backend evaluates circuits: exact density matrices
/// for small windows, Monte-Carlo trajectories beyond
/// [`DENSITY_MATRIX_LIMIT`].
#[derive(Debug, Clone)]
enum ModelEngine {
    Density(HardwareEmulator),
    Trajectory(TrajectoryEmulator),
}

impl ModelEngine {
    fn build(model: DeviceModel) -> Result<ModelEngine, BackendError> {
        if model.n_qubits() <= DENSITY_MATRIX_LIMIT {
            Ok(ModelEngine::Density(HardwareEmulator::new(model)))
        } else {
            Ok(ModelEngine::Trajectory(TrajectoryEmulator::new(
                model,
                DEFAULT_TRAJECTORIES,
            )?))
        }
    }

    fn run(
        &self,
        circuit: &Circuit,
        shots: Option<usize>,
        rng: &mut StdRng,
    ) -> Result<Vec<f64>, BackendError> {
        match (self, shots) {
            (ModelEngine::Density(e), None) => e.expect_all_z(circuit),
            (ModelEngine::Density(e), Some(s)) => e.sampled_expect_all_z(circuit, s, rng),
            (ModelEngine::Trajectory(e), None) => e.expect_all_z(circuit, rng),
            (ModelEngine::Trajectory(e), Some(s)) => e.sampled_expect_all_z(circuit, s, rng),
        }
    }
}

/// Shared body of the two device-model backends.
#[derive(Debug, Clone)]
struct ModelBackend {
    name: String,
    base: DeviceModel,
    engine: ModelEngine,
    rng: StdRng,
}

impl ModelBackend {
    fn new(name: String, model: DeviceModel, seed: u64) -> Result<Self, BackendError> {
        Ok(ModelBackend {
            name,
            engine: ModelEngine::build(model.clone())?,
            base: model,
            rng: StdRng::seed_from_u64(seed),
        })
    }

    fn execute(
        &mut self,
        circuit: &Circuit,
        shots: Option<usize>,
    ) -> Result<Measurements, BackendError> {
        validate_circuit(circuit, self.base.n_qubits(), &self.name, Some(&self.base))?;
        check_shots(shots)?;
        let expectations = self.engine.run(circuit, shots, &mut self.rng)?;
        Ok(Measurements {
            expectations,
            shots_used: shots,
        })
    }

    fn apply_drift(&mut self, gate_scale: f64, readout_scale: f64) {
        if (gate_scale - 1.0).abs() < 1e-12 && (readout_scale - 1.0).abs() < 1e-12 {
            return;
        }
        let drifted = self.base.drifted(gate_scale, readout_scale);
        // A drifted copy of a valid model stays valid (scaling clamps), so
        // the rebuild cannot fail; fall back to the undrifted engine if it
        // somehow does rather than panicking mid-deployment.
        if let Ok(engine) = ModelEngine::build(drifted) {
            self.engine = engine;
        }
    }
}

/// The Pauli-twirled calibration noise model — what training injects and
/// what deployment degrades to when hardware keeps failing (the paper's
/// Table 11 shows this tracks real hardware within a few accuracy points).
#[derive(Debug, Clone)]
pub struct NoiseModelBackend {
    inner: ModelBackend,
}

impl NoiseModelBackend {
    /// Builds the backend from a calibration model; damping channels are
    /// stripped ([`DeviceModel::pauli_only`]) because the published noise
    /// model does not capture them.
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::InvalidConfig`] if the engine cannot be
    /// constructed.
    pub fn new(model: &DeviceModel, seed: u64) -> Result<Self, BackendError> {
        Ok(NoiseModelBackend {
            inner: ModelBackend::new(
                format!("noise-model({})", model.name()),
                model.pauli_only(),
                seed,
            )?,
        })
    }
}

impl QuantumBackend for NoiseModelBackend {
    fn name(&self) -> &str {
        &self.inner.name
    }

    fn n_qubits(&self) -> usize {
        self.inner.base.n_qubits()
    }

    fn validate(&self, circuit: &Circuit) -> Result<(), BackendError> {
        validate_circuit(
            circuit,
            self.inner.base.n_qubits(),
            &self.inner.name,
            Some(&self.inner.base),
        )
    }

    fn execute(
        &mut self,
        circuit: &Circuit,
        shots: Option<usize>,
    ) -> Result<Measurements, BackendError> {
        self.inner.execute(circuit, shots)
    }

    fn apply_drift(&mut self, gate_scale: f64, readout_scale: f64) {
        self.inner.apply_drift(gate_scale, readout_scale);
    }
}

/// The full density-matrix hardware emulator (gate Pauli channels **plus**
/// amplitude/phase damping) — the "real QC" stand-in.
#[derive(Debug, Clone)]
pub struct EmulatorBackend {
    inner: ModelBackend,
}

impl EmulatorBackend {
    /// Builds the backend over a device model (typically the transpiler's
    /// windowed `device_view`).
    ///
    /// # Errors
    ///
    /// Returns [`BackendError::InvalidConfig`] if the engine cannot be
    /// constructed.
    pub fn new(model: &DeviceModel, seed: u64) -> Result<Self, BackendError> {
        Ok(EmulatorBackend {
            inner: ModelBackend::new(format!("emulator({})", model.name()), model.clone(), seed)?,
        })
    }

    /// The device model this backend currently runs (drift included).
    pub fn model(&self) -> &DeviceModel {
        &self.inner.base
    }
}

impl QuantumBackend for EmulatorBackend {
    fn name(&self) -> &str {
        &self.inner.name
    }

    fn n_qubits(&self) -> usize {
        self.inner.base.n_qubits()
    }

    fn validate(&self, circuit: &Circuit) -> Result<(), BackendError> {
        validate_circuit(
            circuit,
            self.inner.base.n_qubits(),
            &self.inner.name,
            Some(&self.inner.base),
        )
    }

    fn execute(
        &mut self,
        circuit: &Circuit,
        shots: Option<usize>,
    ) -> Result<Measurements, BackendError> {
        self.inner.execute(circuit, shots)
    }

    fn apply_drift(&mut self, gate_scale: f64, readout_scale: f64) {
        self.inner.apply_drift(gate_scale, readout_scale);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use qnat_sim::gate::Gate;

    fn bell() -> Circuit {
        let mut c = Circuit::new(2);
        c.push(Gate::h(0));
        c.push(Gate::cx(0, 1));
        c
    }

    #[test]
    fn simulator_backend_matches_statevector() {
        let mut b = SimulatorBackend::new(0);
        let m = b.execute(&bell(), None).unwrap();
        assert!(m.expectations.iter().all(|z| z.abs() < 1e-10));
        assert_eq!(m.shots_used, None);
    }

    #[test]
    fn oversized_circuit_is_typed_error() {
        let mut b = EmulatorBackend::new(&presets::santiago(), 0).unwrap();
        let err = b.execute(&Circuit::new(6), None).unwrap_err();
        assert!(matches!(err, BackendError::QubitCount { needed: 6, .. }));
        assert!(!err.is_retryable());
    }

    #[test]
    fn non_finite_parameter_is_typed_error() {
        let mut c = Circuit::new(1);
        c.push(Gate::ry(0, f64::NAN));
        let mut b = SimulatorBackend::new(0);
        let err = b.execute(&c, None).unwrap_err();
        assert!(matches!(
            err,
            BackendError::NonFiniteParameter {
                gate_index: 0,
                slot: 0
            }
        ));
    }

    #[test]
    fn unrouted_two_qubit_gate_is_typed_error() {
        // Santiago is a 5-qubit line: (0,2) is not an edge.
        let mut c = Circuit::new(3);
        c.push(Gate::cx(0, 2));
        let mut b = EmulatorBackend::new(&presets::santiago(), 0).unwrap();
        let err = b.execute(&c, None).unwrap_err();
        assert!(matches!(
            err,
            BackendError::UnmappedTwoQubitGate { a: 0, b: 2, .. }
        ));
    }

    #[test]
    fn zero_shots_rejected() {
        let mut b = SimulatorBackend::new(0);
        let err = b.execute(&bell(), Some(0)).unwrap_err();
        assert_eq!(err, BackendError::ShotBudget { requested: 0 });
    }

    #[test]
    fn noise_model_backend_contracts_expectations() {
        let mut c = Circuit::new(1);
        c.push(Gate::x(0));
        for _ in 0..20 {
            c.push(Gate::sx(0));
        }
        let mut ideal = SimulatorBackend::new(0);
        let mut noisy = NoiseModelBackend::new(&presets::yorktown(), 0).unwrap();
        let zi = ideal.execute(&c, None).unwrap().expectations[0];
        let zn = noisy.execute(&c, None).unwrap().expectations[0];
        assert!(zn.abs() < zi.abs(), "noise contracts |Z|: {zn} vs {zi}");
    }

    #[test]
    fn emulator_noisier_than_noise_model() {
        // The full emulator adds damping on top of the Pauli channels, so
        // its expectations sit at least as far from ideal.
        let mut c = Circuit::new(1);
        c.push(Gate::x(0));
        for _ in 0..40 {
            c.push(Gate::sx(0));
        }
        let model = presets::melbourne().subdevice(&[0]).unwrap();
        let mut nm = NoiseModelBackend::new(&model, 0).unwrap();
        let mut emu = EmulatorBackend::new(&model, 0).unwrap();
        let z_nm = nm.execute(&c, None).unwrap().expectations[0];
        let z_emu = emu.execute(&c, None).unwrap().expectations[0];
        let ideal = -1.0; // X then even number of SX
        assert!((z_emu - ideal).abs() >= (z_nm - ideal).abs() - 1e-12);
    }

    #[test]
    fn drift_increases_noise() {
        let mut c = Circuit::new(1);
        c.push(Gate::x(0));
        for _ in 0..20 {
            c.push(Gate::sx(0));
        }
        let model = presets::santiago().subdevice(&[0]).unwrap();
        let mut b = EmulatorBackend::new(&model, 0).unwrap();
        let z0 = b.execute(&c, None).unwrap().expectations[0];
        b.apply_drift(4.0, 4.0);
        let z1 = b.execute(&c, None).unwrap().expectations[0];
        assert!(z1.abs() < z0.abs(), "drifted run noisier: {z1} vs {z0}");
    }

    #[test]
    fn finite_shots_reported_and_noisy() {
        let mut b = SimulatorBackend::new(7);
        let exact = b.execute(&bell(), None).unwrap();
        let sampled = b.execute(&bell(), Some(128)).unwrap();
        assert_eq!(sampled.shots_used, Some(128));
        assert!(sampled
            .expectations
            .iter()
            .zip(&exact.expectations)
            .any(|(s, e)| (s - e).abs() > 1e-6));
    }

    #[test]
    fn backend_trait_is_object_safe() {
        let model = presets::santiago();
        let mut backends: Vec<Box<dyn QuantumBackend>> = vec![
            Box::new(SimulatorBackend::new(0)),
            Box::new(NoiseModelBackend::new(&model, 0).unwrap()),
            Box::new(EmulatorBackend::new(&model, 0).unwrap()),
        ];
        for b in &mut backends {
            let m = b.execute(&bell(), None).unwrap();
            assert_eq!(m.expectations.len(), 2, "{}", b.name());
        }
    }
}
