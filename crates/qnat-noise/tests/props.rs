//! Property-based tests for noise models: probability sanity, scaling
//! laws, injection structure and emulator physicality.

use proptest::prelude::*;
use qnat_noise::device::DeviceModel;
use qnat_noise::emulator::HardwareEmulator;
use qnat_noise::error_spec::PauliErrorSpec;
use qnat_noise::inject::{expected_overhead, insert_error_gates};
use qnat_noise::presets;
use qnat_noise::readout::ReadoutError;
use qnat_sim::circuit::Circuit;
use qnat_sim::gate::{Gate, GateKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_spec() -> impl Strategy<Value = PauliErrorSpec> {
    (0.0f64..0.3, 0.0f64..0.3, 0.0f64..0.3)
        .prop_map(|(x, y, z)| PauliErrorSpec::new(x, y, z).unwrap())
}

fn arb_circuit() -> impl Strategy<Value = Circuit> {
    prop::collection::vec(
        prop_oneof![
            (0usize..4).prop_map(Gate::sx),
            (0usize..4).prop_map(Gate::x),
            (0usize..4, -3.0f64..3.0).prop_map(|(q, a)| Gate::rz(q, a)),
            (0usize..4, 1usize..4).prop_map(|(a, d)| Gate::cx(a, (a + d) % 4)),
        ],
        1..25,
    )
    .prop_map(|gates| {
        let mut c = Circuit::new(4);
        c.extend(gates);
        c
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn spec_scaling_is_linear_below_cap(spec in arb_spec(), t in 0.0f64..2.0) {
        let scaled = spec.scaled(t);
        let expect = (spec.total() * t).min(1.0);
        prop_assert!(
            (scaled.total() - expect).abs() < 1e-9,
            "total {} expected {}", scaled.total(), expect
        );
        prop_assert!(scaled.validate().is_ok());
    }

    #[test]
    fn readout_rows_are_stochastic(p01 in 0.0f64..0.5, p10 in 0.0f64..0.5, t in 0.0f64..2.0) {
        let r = ReadoutError::asymmetric(p01, p10).unwrap().scaled(t);
        for row in r.matrix() {
            prop_assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-12);
            prop_assert!(row.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn readout_expectation_map_is_contraction(
        p01 in 0.0f64..0.4,
        p10 in 0.0f64..0.4,
        z in -1.0f64..1.0,
    ) {
        let r = ReadoutError::asymmetric(p01, p10).unwrap();
        let out = r.apply_to_expectation(z);
        prop_assert!((-1.0..=1.0).contains(&out));
    }

    #[test]
    fn injection_keeps_original_gates_in_order(circuit in arb_circuit(), seed in 0u64..100) {
        let model = presets::yorktown();
        let mut rng = StdRng::seed_from_u64(seed);
        let (noisy, stats) = insert_error_gates(&circuit, &model, 1.5, &mut rng);
        prop_assert_eq!(noisy.len(), circuit.len() + stats.inserted_gates);
        // Removing inserted Pauli gates recovers the original sequence.
        let mut orig = circuit.gates().iter();
        let mut matched = 0usize;
        for g in noisy.gates() {
            if let Some(o) = orig.clone().next() {
                if g == o {
                    orig.next();
                    matched += 1;
                    continue;
                }
            }
            // Inserted gates are always bare Paulis.
            prop_assert!(matches!(g.kind, GateKind::X | GateKind::Y | GateKind::Z));
        }
        prop_assert_eq!(matched, circuit.len());
    }

    #[test]
    fn expected_overhead_scales_with_t(circuit in arb_circuit(), t in 0.1f64..1.5) {
        let model = presets::belem();
        let base = expected_overhead(&circuit, &model, 1.0);
        let scaled = expected_overhead(&circuit, &model, t);
        prop_assert!((scaled - base * t).abs() < 1e-9);
    }

    #[test]
    fn emulator_output_is_physical(circuit in arb_circuit()) {
        let emu = HardwareEmulator::new(presets::yorktown());
        let probs = emu.measure_probabilities(&circuit).unwrap();
        prop_assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-8);
        prop_assert!(probs.iter().all(|&p| p >= -1e-9));
        for z in emu.expect_all_z(&circuit).unwrap() {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&z));
        }
    }

    #[test]
    fn device_json_round_trip(scale in 0.1f64..2.0) {
        for d in presets::all_devices() {
            let scaled = d.scaled(scale);
            let back = DeviceModel::from_json(&scaled.to_json()).unwrap();
            prop_assert_eq!(scaled, back);
        }
    }

    #[test]
    fn subdevice_is_consistent(keep in prop::collection::vec(0usize..5, 2..4)) {
        let mut keep = keep;
        keep.sort_unstable();
        keep.dedup();
        prop_assume!(keep.len() >= 2);
        let d = presets::santiago();
        let sub = d.subdevice(&keep).unwrap();
        prop_assert_eq!(sub.n_qubits(), keep.len());
        for (i, &p) in keep.iter().enumerate() {
            prop_assert_eq!(sub.single_qubit_error(i), d.single_qubit_error(p));
            prop_assert_eq!(sub.readout_error(i), d.readout_error(p));
        }
    }
}
