//! The [`FleetRouter`]: one logical job queue sharded over many serving
//! engines with noise-aware routing, failover, hedged retries and
//! quarantine.
//!
//! ## Architecture
//!
//! The router fronts N [`ServeEngine`]s — one per [`FleetDevice`], all
//! sharing one [`HealthRegistry`] keyed by device name. Callers submit
//! fleet jobs ([`FleetRouter::submit`]) into a bounded FIFO; a pool of
//! *pilot* threads pops them and, per job: scores every candidate device,
//! routes to the best, waits for the outcome, and delivers it through
//! [`FleetRouter::poll`]/[`FleetRouter::wait`].
//!
//! ## Routing score
//!
//! Lower is better:
//!
//! ```text
//! score(d) = w.depth · load(d)            // queued + running jobs
//!          + w.noise · noise(d, job)      // drifted mean error estimate
//!          + breaker_penalty(d)           // 0 / half-open / open
//! ```
//!
//! `noise(d, job)` evaluates the device's declared [`DriftCursor`] at the
//! fleet job index and sums the drifted model's mean single-qubit,
//! two-qubit and readout errors — the fleet analogue of QuantumNAT's
//! noise-adaptive compilation, lifted from qubit mapping to device
//! choice. Ties break toward the lower device index, so scoring is
//! deterministic given identical observations.
//!
//! ## Failover, hedging, quarantine
//!
//! A refused submission ([`SubmitError`]) or an error outcome
//! (`CircuitOpen` fast-fails and terminal `BackendError`s alike) sends
//! the job to the next-best untried device instead of surfacing the
//! refusal; only when *every* device has been tried does the last error
//! reach the caller. Jobs slower than a configurable latency percentile
//! get a **hedged** duplicate on the next-best device with the *same*
//! `(global, seed)` pair; whichever attempt completes first wins
//! (ties break toward the primary), and the loser's outcome is reaped
//! and discarded after delivery. Devices whose breaker trips repeatedly
//! are **quarantined** out of the candidate set; their breakers keep
//! serving cooldown through idle ticks (`HealthRegistry::tick_idle`, one
//! planned epoch per routing event — the serving layer's epochs-of-one
//! cadence, applied to zero-traffic devices), and once half-open the
//! router probes them with a live job every few routing rounds,
//! re-admitting on reclose. With every device quarantined and none
//! probe-ready, [`FleetRouter::submit`] refuses with the typed
//! [`FleetError::AllDevicesDown`].
//!
//! ## Determinism contract
//!
//! Fleet job `t` always runs under seed
//! `splitmix64(fleet_seed ^ splitmix64(t))` — the same derivation the
//! batch and serving layers use — pinned through every engine by
//! [`ServeEngine::submit_routed`], so a failover or hedge re-runs the
//! *identical* executor stack. Which device wins is timing- and
//! health-dependent (documented relaxation), but the router records a
//! [`RoutingTrace`], and [`replay_job`] re-executes any delivered
//! attempt bitwise identically — pinned by
//! `qnat-fleet/tests/fleet_props.rs`. Fast-failed deliveries (the
//! breaker refused, nothing ran) carry no executable attempt and are the
//! one non-replayable disposition.

use crate::device::FleetDevice;
use qnat_calib::{
    CalibConfig, CalibDecision, CalibTrace, CalibrationHealth, CalibrationTracker, CandidateScore,
    NoiseSource,
};
use qnat_core::batch::{run_job, BatchJob, JobDeadline};
use qnat_core::executor::{splitmix64, ExecutionReport};
use qnat_core::health::{BreakerPolicy, BreakerSnapshot, BreakerState, HealthRegistry};
use qnat_noise::backend::{BackendError, Measurements};
use qnat_noise::device::DeviceModel;
use qnat_noise::fault::DriftCursor;
use qnat_serve::engine::{
    AdmissionControl, EngineLoad, JobOutcome, Lane, LaneConfig, OpenAction, ServeConfig,
    ServeEngine, SubmitError, Ticket, WaitError,
};
use std::collections::{HashMap, HashSet, VecDeque};
use std::error::Error;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Instant;

/// Handle to one accepted fleet submission. Fleet tickets are dense and
/// monotonic: the ticket *is* the fleet-wide job index the seed is
/// derived from, independent of which device ends up running the job.
pub type FleetTicket = u64;

/// Relative weights of the routing score's components (lower score
/// wins).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoreWeights {
    /// Per queued-or-running job on the device's engine.
    pub depth: f64,
    /// Per unit of estimated mean error (single + two-qubit + readout).
    pub noise: f64,
    /// Flat penalty while the device's breaker is half-open.
    pub half_open_penalty: f64,
    /// Flat penalty while the device's breaker is open — large enough to
    /// lose to any healthy device, small enough to still order multiple
    /// open devices by noise.
    pub open_penalty: f64,
}

impl Default for ScoreWeights {
    fn default() -> Self {
        ScoreWeights {
            depth: 0.01,
            noise: 1.0,
            half_open_penalty: 0.05,
            open_penalty: 1e3,
        }
    }
}

/// Where the routing score's noise term comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScorePolicy {
    /// The declared calibration: the device's static model, drifted along
    /// its declared [`DriftCursor`] (the original fleet behavior).
    #[default]
    Static,
    /// The learned calibration: the [`CalibrationTracker`]'s routing
    /// estimate (prediction plus uncertainty margin), learned online from
    /// the execution-report stream and blended with the static term in
    /// proportion to the device's observation-window fill — an
    /// under-observed device is scored mostly by its declared calibration
    /// so early pessimism can't starve it of traffic. Fully cold devices
    /// fall back to the static term per candidate, and every scored
    /// decision is recorded in the router's [`CalibTrace`] for bitwise
    /// replay.
    Predicted,
}

/// When to launch a hedged duplicate of a slow job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HedgePolicy {
    /// Completed-job latency percentile (0–100) past which the duplicate
    /// launches.
    pub percentile: f64,
    /// Completed jobs required in the latency window before hedging arms
    /// (before that, jobs wait unhedged).
    pub min_samples: usize,
    /// Lower bound on the hedge budget in milliseconds — guards against
    /// hedging every job when the fleet is fast.
    pub floor_ms: u64,
}

impl Default for HedgePolicy {
    fn default() -> Self {
        HedgePolicy {
            percentile: 95.0,
            min_samples: 16,
            floor_ms: 10,
        }
    }
}

/// When to evict a device from the candidate set, and how to let it
/// earn its way back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuarantinePolicy {
    /// Breaker trips since the device's last (re-)admission that trigger
    /// quarantine (clamped to ≥ 1).
    pub trip_threshold: u64,
    /// Every `probe_every`-th routing round offers one half-open
    /// quarantined device a live job as a recovery probe (clamped to
    /// ≥ 1).
    pub probe_every: u64,
}

impl Default for QuarantinePolicy {
    fn default() -> Self {
        QuarantinePolicy {
            trip_threshold: 2,
            probe_every: 4,
        }
    }
}

/// Fleet-wide configuration.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Fleet seed: job `t` runs under `splitmix64(seed ^ splitmix64(t))`
    /// on whichever device serves it.
    pub seed: u64,
    /// Pilot threads routing jobs concurrently (clamped to ≥ 1). Each
    /// pilot shepherds one fleet job at a time end-to-end.
    pub pilots: usize,
    /// Bounded fleet queue capacity; producers block when full (clamped
    /// to ≥ 1).
    pub queue_capacity: usize,
    /// Worker threads per device engine (clamped to ≥ 1).
    pub engine_workers: usize,
    /// Per-device lane capacity (clamped to ≥ 1).
    pub lane_capacity: usize,
    /// Optional per-job backoff budget in milliseconds, applied on every
    /// device.
    pub deadline_ms: Option<u64>,
    /// Breaker thresholds for every device's admission control.
    pub breaker: BreakerPolicy,
    /// Routing-score weights.
    pub weights: ScoreWeights,
    /// Hedged-retry policy (`None` disables hedging).
    pub hedge: Option<HedgePolicy>,
    /// Quarantine policy.
    pub quarantine: QuarantinePolicy,
    /// Noise-term source for the routing score. The tracker observes the
    /// report stream under both policies (so `/healthz` and accuracy
    /// accounting work everywhere); the policy only controls whether
    /// routing *acts* on its estimates.
    pub score_policy: ScorePolicy,
    /// Calibration-tracker hyper-parameters.
    pub calibration: CalibConfig,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            seed: 0,
            pilots: 4,
            queue_capacity: 256,
            engine_workers: 2,
            lane_capacity: 64,
            deadline_ms: None,
            breaker: BreakerPolicy::default(),
            weights: ScoreWeights::default(),
            hedge: Some(HedgePolicy::default()),
            quarantine: QuarantinePolicy::default(),
            score_policy: ScorePolicy::default(),
            calibration: CalibConfig::default(),
        }
    }
}

/// Why the fleet refused a submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetError {
    /// Every device is quarantined and none has cooled down to a
    /// probe-ready half-open breaker — the fleet has fully degraded.
    AllDevicesDown {
        /// Fleet size, for the error message.
        devices: usize,
    },
    /// The router is draining or dropped; no new work is accepted.
    Stopping,
    /// A fleet needs at least one device.
    NoDevices,
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::AllDevicesDown { devices } => {
                write!(f, "all {devices} fleet devices are quarantined")
            }
            FleetError::Stopping => write!(f, "fleet router is stopping"),
            FleetError::NoDevices => write!(f, "fleet has no devices"),
        }
    }
}

impl Error for FleetError {}

/// Why an attempt was made.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttemptKind {
    /// The first, best-scored attempt of the job.
    Primary,
    /// A re-route after a refused or failed earlier attempt.
    Failover,
    /// A duplicate launched because the running attempt exceeded the
    /// hedge budget.
    Hedge,
    /// A live recovery probe routed to a half-open quarantined device.
    Probe,
}

/// What became of one attempt.
#[derive(Debug, Clone, PartialEq)]
pub enum Disposition {
    /// This attempt's outcome was delivered to the caller.
    Won,
    /// The attempt ran and completed with this error; the router failed
    /// over (or, if it was the last candidate, delivered the error — then
    /// it is also the winner).
    Failed(BackendError),
    /// The device's open breaker fast-failed the attempt without running
    /// it.
    FastFailed,
    /// The engine refused the submission outright (no ticket issued).
    Refused(SubmitError),
    /// The attempt lost a hedge race; its outcome was reaped and
    /// discarded.
    Lost,
}

/// One attempt of one fleet job on one device.
#[derive(Debug, Clone, PartialEq)]
pub struct AttemptTrace {
    /// Device (and breaker-key) name.
    pub device: String,
    /// Why the attempt was made.
    pub kind: AttemptKind,
    /// The device engine's local ticket (`None` for refused
    /// submissions).
    pub ticket: Option<Ticket>,
    /// What became of it.
    pub disposition: Disposition,
}

/// The full routing history of one fleet job — enough to re-execute the
/// delivered outcome bitwise via [`replay_job`].
#[derive(Debug, Clone, PartialEq)]
pub struct JobTrace {
    /// Fleet ticket (= fleet-wide job index).
    pub job: FleetTicket,
    /// The seed every attempt ran under:
    /// `splitmix64(fleet_seed ^ splitmix64(job))`.
    pub seed: u64,
    /// Attempts in launch order.
    pub attempts: Vec<AttemptTrace>,
    /// Index into `attempts` of the attempt whose outcome was delivered
    /// (`None` only if no device could even be attempted).
    pub winner: Option<usize>,
}

/// Every job's [`JobTrace`], sorted by fleet ticket.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RoutingTrace {
    /// One trace per delivered fleet job.
    pub jobs: Vec<JobTrace>,
}

/// Everything one delivered fleet job produced.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetOutcome {
    /// The delivered result (failover rescues included).
    pub result: Result<Measurements, BackendError>,
    /// The winning attempt's execution report.
    pub report: ExecutionReport,
    /// Device that produced the delivered outcome.
    pub device: String,
    /// Total attempts the job consumed (refusals included).
    pub attempts: usize,
    /// Whether a hedged duplicate was launched.
    pub hedged: bool,
}

/// Non-blocking status of a fleet ticket ([`FleetRouter::poll`]).
#[derive(Debug, Clone, PartialEq)]
pub enum FleetPoll {
    /// Waiting in the fleet queue.
    Queued,
    /// A pilot is shepherding it across devices.
    Running,
    /// Finished — the outcome is handed over (a second poll returns
    /// [`FleetPoll::Unknown`]).
    Ready(Box<FleetOutcome>),
    /// Never submitted, already consumed, or discarded at shutdown.
    Unknown,
}

/// Counters of everything the fleet did so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetStats {
    /// Fleet tickets issued.
    pub submitted: u64,
    /// Fleet jobs delivered.
    pub completed: u64,
    /// Attempts that failed or were refused and triggered a re-route.
    pub failovers: u64,
    /// Hedged duplicates launched.
    pub hedges: u64,
    /// Hedge races won by the duplicate.
    pub hedge_wins: u64,
    /// Live recovery probes routed to quarantined devices.
    pub probes: u64,
    /// Devices evicted into quarantine.
    pub quarantined: u64,
    /// Devices re-admitted after their breaker reclosed.
    pub readmitted: u64,
    /// Submissions refused with [`FleetError::AllDevicesDown`].
    pub refused_all_down: u64,
    /// Idle cooldown epochs served to zero-traffic breakers.
    pub idle_ticks: u64,
}

/// One device's row in [`FleetHealth`].
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceHealthView {
    /// Device (and breaker-key) name.
    pub name: String,
    /// Whether the router currently excludes it from the candidate set.
    pub quarantined: bool,
    /// Its engine's queue/running depths.
    pub load: EngineLoad,
    /// Its breaker, once traffic has created one.
    pub breaker: Option<BreakerSnapshot>,
    /// The router's current noise estimate for it (drift evaluated at
    /// the next fleet ticket).
    pub noise_estimate: f64,
}

/// A point-in-time view of the whole fleet, for `/healthz` and
/// operators.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetHealth {
    /// One row per device, in fleet order.
    pub devices: Vec<DeviceHealthView>,
}

/// Router-side bookkeeping about one device.
struct DeviceState {
    quarantined: bool,
    /// Breaker trip count at the device's last (re-)admission; the
    /// quarantine trigger compares against this baseline.
    trips_baseline: u64,
}

/// Mutable router state behind the one mutex.
struct RouterState {
    next: FleetTicket,
    queue: VecDeque<(FleetTicket, BatchJob)>,
    running: HashSet<FleetTicket>,
    ready: HashMap<FleetTicket, FleetOutcome>,
    traces: Vec<JobTrace>,
    /// Recent delivered-job latencies (ms), the hedge budget's sample.
    latencies: VecDeque<u64>,
    /// One drift cursor per device with a declared fault spec.
    cursors: Vec<Option<DriftCursor>>,
    /// The learned calibration tracker, fed every delivered job's report
    /// in ticket order (regardless of [`ScorePolicy`]).
    tracker: CalibrationTracker,
    /// Every prediction-driven scoring decision, in routing order.
    calib_decisions: Vec<CalibDecision>,
    devices: Vec<DeviceState>,
    stats: FleetStats,
    /// Monotone routing-round counter driving the probe cadence.
    route_rounds: u64,
    stopping: bool,
    discard: bool,
}

struct Slot {
    device: FleetDevice,
    engine: ServeEngine,
}

struct Shared {
    state: Mutex<RouterState>,
    /// Pilots wait here for fleet jobs.
    jobs_cv: Condvar,
    /// Blocked producers wait here for queue space.
    space_cv: Condvar,
    /// `wait` callers wait here for deliveries.
    done_cv: Condvar,
    slots: Vec<Slot>,
    registry: Arc<HealthRegistry>,
    config: FleetConfig,
}

const LATENCY_WINDOW: usize = 256;
/// Slice length of the hedge race's alternating bounded waits.
const RACE_SLICE_MS: u64 = 2;

impl Shared {
    fn lock_state(&self) -> MutexGuard<'_, RouterState> {
        // A poisoned lock means a pilot panicked mid-delivery; the queue
        // bookkeeping mutations all complete before any panic-prone user
        // code, so keep serving.
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Sum of the drifted model's mean errors for `slot` at fleet job
    /// index `job` — the noise half of the routing score.
    fn noise_estimate(
        &self,
        index: usize,
        cursor: Option<&mut DriftCursor>,
        job: u64,
    ) -> f64 {
        let model = self.slots[index].device.model();
        match cursor {
            Some(c) => {
                let (gate_scale, readout_scale) = c.scales_at(job);
                mean_error_sum(&model.drifted(gate_scale, readout_scale))
            }
            None => mean_error_sum(model),
        }
    }

    /// Refreshes quarantine bookkeeping from breaker snapshots, serves
    /// idle cooldown ticks, and picks the best candidate device for
    /// fleet job `job`, excluding `tried`. Returns the device index and
    /// whether the choice is a quarantine recovery probe. `None` only
    /// when every device is in `tried`.
    ///
    /// Lock order: called with the router state lock held; takes engine
    /// state locks (load) and the registry lock briefly — never the
    /// reverse anywhere in the fleet.
    fn choose_device(
        &self,
        st: &mut RouterState,
        job: u64,
        tried: &HashSet<usize>,
        allow_probe: bool,
    ) -> Option<(usize, bool)> {
        st.route_rounds += 1;
        let snaps: Vec<Option<BreakerSnapshot>> = self
            .slots
            .iter()
            .map(|s| self.registry.snapshot(s.device.name()))
            .collect();
        let trip_threshold = self.config.quarantine.trip_threshold.max(1);
        for (i, snap) in snaps.iter().enumerate() {
            let Some(snap) = snap else { continue };
            let d = &mut st.devices[i];
            if !d.quarantined && snap.trips.saturating_sub(d.trips_baseline) >= trip_threshold {
                d.quarantined = true;
                st.stats.quarantined += 1;
            } else if d.quarantined && snap.state == BreakerState::Closed {
                // The breaker reclosed (a probe succeeded): re-admit, and
                // restart the trip count from here.
                d.quarantined = false;
                d.trips_baseline = snap.trips;
                st.stats.readmitted += 1;
            }
        }
        // Probe cadence: every probe_every-th round, one half-open
        // quarantined device gets a live job to prove itself with.
        let chosen = if allow_probe
            && st
                .route_rounds
                .is_multiple_of(self.config.quarantine.probe_every.max(1))
        {
            (0..self.slots.len()).find(|i| {
                !tried.contains(i)
                    && st.devices[*i].quarantined
                    && snaps[*i].map(|s| s.state) == Some(BreakerState::HalfOpen)
            })
        } else {
            None
        };
        let probe = chosen.is_some();
        let chosen = chosen.or_else(|| {
            // Score the healthy candidates (lower wins, ties to the
            // lower index). Under `ScorePolicy::Predicted` the noise
            // term is the tracker's routing estimate (static fallback
            // per cold candidate) and the full scoring row set is
            // recorded as a replayable [`CalibDecision`].
            let predicted = self.config.score_policy == ScorePolicy::Predicted;
            let mut rows: Vec<CandidateScore> = Vec::new();
            let mut best: Option<(usize, f64)> = None;
            for i in 0..self.slots.len() {
                if tried.contains(&i) || st.devices[i].quarantined {
                    continue;
                }
                let depth = self.slots[i].engine.load().total() as f64;
                let (noise, source) = match st.tracker.routing_estimate(i) {
                    Some(e) if predicted => {
                        // Evidence-proportional blend: a device that has
                        // barely been observed carries a wide uncertainty
                        // margin, and trusting that pessimistic learned
                        // estimate outright starves it of the very traffic
                        // that would tighten the margin. Weight the learned
                        // estimate by how full the observation window is
                        // and fall back to the declared calibration for
                        // the remainder, so routing converges to the
                        // tracker only as real evidence accumulates.
                        let fill = st.tracker.window_fill(i).clamp(0.0, 1.0);
                        let stat = self.noise_estimate(i, st.cursors[i].as_mut(), job);
                        (fill * e + (1.0 - fill) * stat, NoiseSource::Predicted)
                    }
                    _ => (
                        self.noise_estimate(i, st.cursors[i].as_mut(), job),
                        NoiseSource::Static,
                    ),
                };
                let penalty = match snaps[i].map(|s| s.state) {
                    Some(BreakerState::Open { .. }) => self.config.weights.open_penalty,
                    Some(BreakerState::HalfOpen) => self.config.weights.half_open_penalty,
                    _ => 0.0,
                };
                let score = self.config.weights.depth * depth
                    + self.config.weights.noise * noise
                    + penalty;
                if predicted {
                    rows.push(CandidateScore {
                        device: self.slots[i].device.name().to_owned(),
                        index: i,
                        noise,
                        source,
                        depth,
                        penalty,
                        score,
                    });
                }
                if best.is_none_or(|(_, b)| score < b) {
                    best = Some((i, score));
                }
            }
            if predicted {
                if let Some((i, _)) = best {
                    st.calib_decisions.push(CalibDecision {
                        job,
                        depth_weight: self.config.weights.depth,
                        noise_weight: self.config.weights.noise,
                        candidates: rows,
                        chosen: i,
                    });
                }
            }
            best.map(|(i, _)| i)
        });
        let chosen = chosen.or_else(|| {
            // Graceful degradation's last resort: every untried device is
            // quarantined. Attempt the least-noisy one anyway — its
            // breaker will fast-fail instantly if still open, and the
            // attempt doubles as recovery traffic.
            let mut best: Option<(usize, f64)> = None;
            for i in 0..self.slots.len() {
                if tried.contains(&i) {
                    continue;
                }
                let noise = self.noise_estimate(i, st.cursors[i].as_mut(), job);
                if best.is_none_or(|(_, b)| noise < b) {
                    best = Some((i, noise));
                }
            }
            best.map(|(i, _)| i)
        });
        // Devices not receiving this job still serve their cooldowns:
        // one idle epoch per routing event keeps zero-traffic breakers
        // moving toward half-open instead of starving open forever.
        for (i, slot) in self.slots.iter().enumerate() {
            if Some(i) == chosen {
                continue;
            }
            if let Some(state) = self.registry.tick_idle(slot.device.name()) {
                if state != BreakerState::Closed {
                    st.stats.idle_ticks += 1;
                }
            }
        }
        if probe {
            st.stats.probes += 1;
        }
        chosen.map(|i| (i, probe))
    }

    /// The current hedge budget in ms, or `None` when hedging is off or
    /// not yet armed.
    fn hedge_budget_ms(&self) -> Option<u64> {
        let policy = self.config.hedge.as_ref()?;
        let st = self.lock_state();
        if st.latencies.len() < policy.min_samples {
            return None;
        }
        if st.latencies.is_empty() {
            return Some(policy.floor_ms.max(1));
        }
        let mut sorted: Vec<u64> = st.latencies.iter().copied().collect();
        drop(st);
        sorted.sort_unstable();
        let frac = (policy.percentile.clamp(0.0, 100.0) / 100.0) * (sorted.len() - 1) as f64;
        let budget = sorted[frac.round() as usize];
        Some(budget.max(policy.floor_ms).max(1))
    }
}

fn mean_error_sum(model: &DeviceModel) -> f64 {
    model.mean_single_qubit_error() + model.mean_two_qubit_error() + model.mean_readout_error()
}

/// A fleet of serving engines behind one noise-aware router. See the
/// module docs for the routing, failover and determinism contracts.
pub struct FleetRouter {
    shared: Arc<Shared>,
    pilots: Vec<JoinHandle<()>>,
}

impl FleetRouter {
    /// Builds one [`ServeEngine`] per device (admission-controlled
    /// against a shared registry, keyed by device name) and starts
    /// `config.pilots` routing pilots.
    ///
    /// # Errors
    ///
    /// [`FleetError::NoDevices`] for an empty device list.
    pub fn new(config: FleetConfig, devices: Vec<FleetDevice>) -> Result<Self, FleetError> {
        if devices.is_empty() {
            return Err(FleetError::NoDevices);
        }
        let registry = Arc::new(HealthRegistry::new());
        let slots: Vec<Slot> = devices
            .into_iter()
            .map(|device| {
                let factory = device.factory();
                let engine = ServeEngine::with_registry(
                    ServeConfig {
                        workers: config.engine_workers.max(1),
                        seed: config.seed,
                        interactive: LaneConfig::blocking(config.lane_capacity.max(1)),
                        bulk: LaneConfig::blocking(config.lane_capacity.max(1)),
                        deadline_ms: config.deadline_ms,
                        admission: Some(AdmissionControl {
                            key: device.name().to_owned(),
                            policy: config.breaker.clone(),
                            on_open: OpenAction::FastFail,
                        }),
                    },
                    move |global, seed| factory(global, seed),
                    Arc::clone(&registry),
                );
                Slot { device, engine }
            })
            .collect();
        let n = slots.len();
        let cursors = slots
            .iter()
            .map(|s| s.device.faults().copied().map(DriftCursor::new))
            .collect();
        // Warm-start the tracker from each device's declared calibration:
        // its first predictions match the static noise term instead of an
        // uninformed 0.5, so prequential accuracy never regresses below
        // the frozen-preset baseline while the window fills.
        let priors: Vec<f64> = slots
            .iter()
            .map(|s| mean_error_sum(s.device.model()))
            .collect();
        let tracker = CalibrationTracker::with_priors(
            config.calibration,
            slots.iter().map(|s| s.device.name().to_owned()).collect(),
            &priors,
        );
        let shared = Arc::new(Shared {
            state: Mutex::new(RouterState {
                next: 0,
                queue: VecDeque::new(),
                running: HashSet::new(),
                ready: HashMap::new(),
                traces: Vec::new(),
                latencies: VecDeque::new(),
                cursors,
                tracker,
                calib_decisions: Vec::new(),
                devices: (0..n)
                    .map(|_| DeviceState {
                        quarantined: false,
                        trips_baseline: 0,
                    })
                    .collect(),
                stats: FleetStats::default(),
                route_rounds: 0,
                stopping: false,
                discard: false,
            }),
            jobs_cv: Condvar::new(),
            space_cv: Condvar::new(),
            done_cv: Condvar::new(),
            slots,
            registry,
            config,
        });
        let pilots = (0..shared.config.pilots.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || pilot_loop(&shared))
            })
            .collect();
        Ok(FleetRouter { shared, pilots })
    }

    /// The per-job executor seed for fleet ticket `t` — the same pure
    /// derivation the batch and serving layers use.
    pub fn job_seed(&self, ticket: FleetTicket) -> u64 {
        splitmix64(self.shared.config.seed ^ splitmix64(ticket))
    }

    /// Enqueues a fleet job and returns its [`FleetTicket`]. Blocks when
    /// the fleet queue is full.
    ///
    /// # Errors
    ///
    /// [`FleetError::AllDevicesDown`] when every device is quarantined
    /// with no probe-ready breaker — the typed signal that the fleet has
    /// fully degraded — and [`FleetError::Stopping`] once the router
    /// drains or drops.
    pub fn submit(&self, job: BatchJob) -> Result<FleetTicket, FleetError> {
        let shared = &*self.shared;
        let mut st = shared.lock_state();
        if st.stopping {
            return Err(FleetError::Stopping);
        }
        let all_down = shared.slots.iter().enumerate().all(|(i, slot)| {
            st.devices[i].quarantined
                && shared
                    .registry
                    .snapshot(slot.device.name())
                    .map(|s| s.state)
                    != Some(BreakerState::HalfOpen)
        });
        if all_down {
            // Even refusals serve the fleet's cooldowns — pure refusal
            // pressure must still be able to resurrect a device.
            for slot in &shared.slots {
                if shared.registry.tick_idle(slot.device.name())
                    .is_some_and(|s| s != BreakerState::Closed)
                {
                    st.stats.idle_ticks += 1;
                }
            }
            st.stats.refused_all_down += 1;
            return Err(FleetError::AllDevicesDown {
                devices: shared.slots.len(),
            });
        }
        let capacity = shared.config.queue_capacity.max(1);
        while st.queue.len() >= capacity && !st.stopping {
            st = shared.space_cv.wait(st).unwrap_or_else(|p| p.into_inner());
        }
        if st.stopping {
            return Err(FleetError::Stopping);
        }
        let ticket = st.next;
        st.next += 1;
        st.stats.submitted += 1;
        st.queue.push_back((ticket, job));
        shared.jobs_cv.notify_one();
        Ok(ticket)
    }

    /// Non-blocking status of `ticket`. [`FleetPoll::Ready`] hands the
    /// outcome over — the router forgets the ticket afterwards.
    pub fn poll(&self, ticket: FleetTicket) -> FleetPoll {
        let mut st = self.shared.lock_state();
        if let Some(outcome) = st.ready.remove(&ticket) {
            return FleetPoll::Ready(Box::new(outcome));
        }
        if st.running.contains(&ticket) {
            return FleetPoll::Running;
        }
        if st.queue.iter().any(|(t, _)| *t == ticket) {
            return FleetPoll::Queued;
        }
        FleetPoll::Unknown
    }

    /// Blocks until `ticket` is delivered and hands its outcome over.
    /// `None` for tickets the router does not know (never issued, already
    /// consumed, or discarded at shutdown).
    pub fn wait(&self, ticket: FleetTicket) -> Option<FleetOutcome> {
        let mut st = self.shared.lock_state();
        loop {
            if let Some(outcome) = st.ready.remove(&ticket) {
                return Some(outcome);
            }
            let pending =
                st.running.contains(&ticket) || st.queue.iter().any(|(t, _)| *t == ticket);
            if !pending {
                return None;
            }
            st = self
                .shared
                .done_cv
                .wait(st)
                .unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> FleetStats {
        self.shared.lock_state().stats
    }

    /// The shared breaker registry (one key per device name).
    pub fn health_registry(&self) -> &Arc<HealthRegistry> {
        &self.shared.registry
    }

    /// Device names in fleet order.
    pub fn device_names(&self) -> Vec<String> {
        self.shared
            .slots
            .iter()
            .map(|s| s.device.name().to_owned())
            .collect()
    }

    /// The fleet configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.shared.config
    }

    /// A point-in-time view of every device: quarantine flag, engine
    /// load, breaker snapshot and the router's current noise estimate.
    pub fn health(&self) -> FleetHealth {
        let shared = &*self.shared;
        let mut st = shared.lock_state();
        let next = st.next;
        let devices = (0..shared.slots.len())
            .map(|i| DeviceHealthView {
                name: shared.slots[i].device.name().to_owned(),
                quarantined: st.devices[i].quarantined,
                load: shared.slots[i].engine.load(),
                breaker: shared.registry.snapshot(shared.slots[i].device.name()),
                noise_estimate: shared.noise_estimate(i, st.cursors[i].as_mut(), next),
            })
            .collect();
        FleetHealth { devices }
    }

    /// The routing history so far, sorted by fleet ticket. Traces of
    /// delivered jobs replay bitwise via [`replay_job`].
    pub fn trace(&self) -> RoutingTrace {
        let st = self.shared.lock_state();
        let mut jobs = st.traces.clone();
        jobs.sort_by_key(|t| t.job);
        RoutingTrace { jobs }
    }

    /// A point-in-time snapshot of the calibration tracker: per-device
    /// estimate, routing estimate, residual EMA, window fill and
    /// observation count — the `/healthz` calibration section.
    pub fn calibration_health(&self) -> CalibrationHealth {
        self.shared.lock_state().tracker.health()
    }

    /// Every prediction-driven scoring decision so far, sorted by fleet
    /// ticket (failover rounds of one job stay in round order). Each
    /// decision's winner recomputes from the trace alone via
    /// [`qnat_calib::replay_decision`]. Empty under
    /// [`ScorePolicy::Static`].
    pub fn calib_trace(&self) -> CalibTrace {
        let st = self.shared.lock_state();
        let mut decisions = st.calib_decisions.clone();
        decisions.sort_by_key(|d| d.job);
        CalibTrace { decisions }
    }

    /// Runs `f` against the live calibration tracker under the router
    /// lock — for accuracy accounting (prequential MAE, raw estimates)
    /// that the health snapshot does not carry. Keep `f` short: it
    /// blocks routing.
    pub fn with_tracker<R>(&self, f: impl FnOnce(&CalibrationTracker) -> R) -> R {
        f(&self.shared.lock_state().tracker)
    }

    /// Graceful shutdown: refuses new submissions, lets the pilots
    /// deliver every queued job, joins them, and returns the final
    /// stats. Unconsumed outcomes are dropped with the router.
    pub fn drain(mut self) -> FleetStats {
        {
            let mut st = self.shared.lock_state();
            st.stopping = true;
        }
        self.shared.jobs_cv.notify_all();
        self.shared.space_cv.notify_all();
        for h in self.pilots.drain(..) {
            let _ = h.join();
        }
        self.shared.lock_state().stats
    }
}

impl Drop for FleetRouter {
    /// Immediate shutdown: queued fleet jobs are discarded (their
    /// `wait`ers get `None`), in-flight jobs finish, pilots and engines
    /// are joined.
    fn drop(&mut self) {
        {
            let mut st = self.shared.lock_state();
            st.stopping = true;
            st.discard = true;
            st.queue.clear();
        }
        self.shared.jobs_cv.notify_all();
        self.shared.space_cv.notify_all();
        self.shared.done_cv.notify_all();
        for h in self.pilots.drain(..) {
            let _ = h.join();
        }
        // Engines shut down when the last Arc<Shared> drops (their own
        // Drop joins their workers); by now the pilots are gone, so any
        // remaining engine work is hedge losers, which finish there.
    }
}

/// One pilot: pop a fleet job, route it across devices until an outcome
/// wins, deliver, reap hedge losers.
fn pilot_loop(shared: &Arc<Shared>) {
    loop {
        let (ticket, job) = {
            let mut st = shared.lock_state();
            loop {
                if st.discard {
                    return;
                }
                if let Some((t, j)) = st.queue.pop_front() {
                    st.running.insert(t);
                    shared.space_cv.notify_all();
                    break (t, j);
                }
                if st.stopping {
                    return;
                }
                st = shared.jobs_cv.wait(st).unwrap_or_else(|p| p.into_inner());
            }
        };
        let seed = splitmix64(shared.config.seed ^ splitmix64(ticket));
        let started = Instant::now();
        let mut trace = JobTrace {
            job: ticket,
            seed,
            attempts: Vec::new(),
            winner: None,
        };
        let mut tried: HashSet<usize> = HashSet::new();
        // Hedge losers to reap (device index, engine ticket) — consumed
        // after delivery so the engines' ready maps never leak.
        let mut reap: Vec<(usize, Ticket)> = Vec::new();
        let mut delivered: Option<FleetOutcome> = None;
        // Best-so-far error outcome, delivered if every device fails.
        let mut last_error: Option<(usize, JobOutcome, String)> = None;
        let mut hedged = false;

        'attempts: loop {
            let choice = {
                let mut st = shared.lock_state();
                shared.choose_device(&mut st, ticket, &tried, true)
            };
            let Some((di, probe)) = choice else {
                break 'attempts;
            };
            tried.insert(di);
            let kind = if probe {
                AttemptKind::Probe
            } else if trace.attempts.is_empty() {
                AttemptKind::Primary
            } else {
                AttemptKind::Failover
            };
            let name = shared.slots[di].device.name().to_owned();
            let engine = &shared.slots[di].engine;
            let engine_ticket =
                match engine.submit_routed(job.clone(), Lane::Interactive, ticket, seed) {
                    Ok(t) => t,
                    Err(e) => {
                        trace.attempts.push(AttemptTrace {
                            device: name,
                            kind,
                            ticket: None,
                            disposition: Disposition::Refused(e),
                        });
                        shared.lock_state().stats.failovers += 1;
                        continue 'attempts;
                    }
                };
            let attempt_index = trace.attempts.len();
            trace.attempts.push(AttemptTrace {
                device: name.clone(),
                kind,
                ticket: Some(engine_ticket),
                disposition: Disposition::Lost,
            });

            // Wait — hedged when armed, plain otherwise. `winner` is
            // (device index, attempt index, outcome).
            let winner: (usize, usize, JobOutcome) = match shared.hedge_budget_ms() {
                Some(budget_ms) => match engine.wait_timeout(engine_ticket, budget_ms) {
                    Ok(o) => (di, attempt_index, o),
                    Err(WaitError::Unknown) => return,
                    Err(WaitError::Timeout { .. }) => {
                        // Slow job: launch the duplicate on the next-best
                        // untried device and race the two.
                        let hedge_choice = {
                            let mut st = shared.lock_state();
                            shared.choose_device(&mut st, ticket, &tried, false)
                        };
                        let mut racer: Option<(usize, usize, Ticket)> = None;
                        if let Some((hi, _)) = hedge_choice {
                            tried.insert(hi);
                            let hedge_name = shared.slots[hi].device.name().to_owned();
                            match shared.slots[hi].engine.submit_routed(
                                job.clone(),
                                Lane::Interactive,
                                ticket,
                                seed,
                            ) {
                                Ok(ht) => {
                                    hedged = true;
                                    shared.lock_state().stats.hedges += 1;
                                    let hedge_index = trace.attempts.len();
                                    trace.attempts.push(AttemptTrace {
                                        device: hedge_name,
                                        kind: AttemptKind::Hedge,
                                        ticket: Some(ht),
                                        disposition: Disposition::Lost,
                                    });
                                    racer = Some((hi, hedge_index, ht));
                                }
                                Err(e) => {
                                    trace.attempts.push(AttemptTrace {
                                        device: hedge_name,
                                        kind: AttemptKind::Hedge,
                                        ticket: None,
                                        disposition: Disposition::Refused(e),
                                    });
                                }
                            }
                        }
                        match racer {
                            Some((hi, hedge_index, ht)) => loop {
                                // Ties break toward the primary: it is
                                // polled first each round.
                                match engine.wait_timeout(engine_ticket, RACE_SLICE_MS) {
                                    Ok(o) => {
                                        reap.push((hi, ht));
                                        break (di, attempt_index, o);
                                    }
                                    Err(WaitError::Unknown) => return,
                                    Err(WaitError::Timeout { .. }) => {}
                                }
                                match shared.slots[hi].engine.wait_timeout(ht, RACE_SLICE_MS) {
                                    Ok(o) => {
                                        reap.push((di, engine_ticket));
                                        shared.lock_state().stats.hedge_wins += 1;
                                        break (hi, hedge_index, o);
                                    }
                                    Err(WaitError::Unknown) => return,
                                    Err(WaitError::Timeout { .. }) => {}
                                }
                            },
                            None => match engine.wait(engine_ticket) {
                                Some(o) => (di, attempt_index, o),
                                None => return,
                            },
                        }
                    }
                },
                None => match engine.wait(engine_ticket) {
                    Some(o) => (di, attempt_index, o),
                    None => return,
                },
            };
            let (win_device, win_index, outcome) = winner;
            let win_name = shared.slots[win_device].device.name().to_owned();
            match &outcome.result {
                Ok(_) => {
                    trace.attempts[win_index].disposition = Disposition::Won;
                    trace.winner = Some(win_index);
                    delivered = Some(FleetOutcome {
                        result: outcome.result,
                        report: outcome.report,
                        device: win_name,
                        attempts: trace.attempts.len(),
                        hedged,
                    });
                    break 'attempts;
                }
                Err(e) => {
                    trace.attempts[win_index].disposition =
                        if matches!(e, BackendError::CircuitOpen { .. }) {
                            // In this fleet CircuitOpen only arises from
                            // admission fast-fail: the job never ran.
                            Disposition::FastFailed
                        } else {
                            Disposition::Failed(e.clone())
                        };
                    last_error = Some((win_index, outcome, win_name));
                    shared.lock_state().stats.failovers += 1;
                }
            }
        }

        let outcome = match delivered {
            Some(o) => o,
            None => match last_error {
                Some((win_index, outcome, device)) => {
                    // Every candidate failed: deliver the last error and
                    // mark its attempt as the winner so the trace still
                    // replays the delivered outcome.
                    trace.winner = Some(win_index);
                    FleetOutcome {
                        result: outcome.result,
                        report: outcome.report,
                        device,
                        attempts: trace.attempts.len(),
                        hedged,
                    }
                }
                None => FleetOutcome {
                    // Nothing could even be attempted (every engine
                    // refused) — surface a typed overload.
                    result: Err(BackendError::Overloaded {
                        reason: "no fleet device accepted the job".into(),
                    }),
                    report: ExecutionReport::default(),
                    device: String::new(),
                    attempts: trace.attempts.len(),
                    hedged,
                },
            },
        };
        {
            let mut st = shared.lock_state();
            st.running.remove(&ticket);
            // Feed the calibration tracker: the winning device's report
            // usage, keyed by the fleet ticket so updates apply in ticket
            // order no matter which pilot delivers first. Undeliverable
            // jobs (no device attempted) still advance the ticket with an
            // evidence-free record so the reorder buffer never stalls.
            let win_device_index = shared
                .slots
                .iter()
                .position(|s| s.device.name() == outcome.device)
                .unwrap_or(0);
            let usage = CalibrationTracker::report_usage(&outcome.report);
            st.tracker
                .observe(ticket, win_device_index, &usage, outcome.result.is_ok());
            let latency_ms = u64::try_from(started.elapsed().as_millis()).unwrap_or(u64::MAX);
            st.latencies.push_back(latency_ms);
            while st.latencies.len() > LATENCY_WINDOW {
                st.latencies.pop_front();
            }
            st.traces.push(trace);
            st.ready.insert(ticket, outcome);
            st.stats.completed += 1;
            shared.done_cv.notify_all();
        }
        // Reap hedge losers only after delivery: the winner's latency is
        // never extended by the loser, but the loser's outcome must not
        // rot in its engine's ready map.
        for (device_index, loser_ticket) in reap.drain(..) {
            let _ = shared.slots[device_index].engine.wait(loser_ticket);
        }
    }
}

/// Re-executes the delivered attempt of `trace` through the same
/// [`run_job`] core the device engines use, returning the bitwise
/// identical `(result, report)` pair — or `None` when the delivered
/// outcome never ran (a fast-failed delivery), when the winner's device
/// is not in `devices`, or when the trace has no winner.
///
/// `job` and `deadline_ms` must match what the fleet ran
/// (`FleetConfig::deadline_ms`).
pub fn replay_job(
    devices: &[FleetDevice],
    trace: &JobTrace,
    job: &BatchJob,
    deadline_ms: Option<u64>,
) -> Option<(Result<Measurements, BackendError>, ExecutionReport)> {
    let attempt = trace.attempts.get(trace.winner?)?;
    match attempt.disposition {
        Disposition::Won | Disposition::Failed(_) => {}
        _ => return None,
    }
    let device = devices.iter().find(|d| d.name() == attempt.device)?;
    let deadline = deadline_ms.map(JobDeadline::PerJob);
    Some(run_job(
        device.factory_ref(),
        trace.job,
        trace.seed,
        job,
        false,
        deadline.as_ref(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::FleetDevice;
    use qnat_core::executor::{ResilientExecutor, RetryPolicy};
    use qnat_noise::backend::{QuantumBackend, SimulatorBackend};
    use qnat_noise::fault::{FaultSpec, FaultyBackend};
    use qnat_noise::presets;
    use qnat_sim::circuit::Circuit;
    use qnat_sim::gate::Gate;
    use std::time::Duration;

    fn job(k: usize) -> BatchJob {
        let mut c = Circuit::new(2);
        c.push(Gate::ry(0, 0.1 + 0.05 * k as f64));
        c.push(Gate::cx(0, 1));
        BatchJob::exact(c)
    }

    /// A clean simulator device scored by `model`'s static calibration.
    fn sim_device(model: DeviceModel) -> FleetDevice {
        FleetDevice::new(model, |_global, seed| {
            Ok(ResilientExecutor::new(
                Box::new(SimulatorBackend::new(seed)),
                RetryPolicy::default(),
            ))
        })
    }

    /// A device whose every job fails (no rescue), regardless of retries.
    fn dead_device(model: DeviceModel) -> FleetDevice {
        FleetDevice::new(model, |global, seed| {
            Ok(ResilientExecutor::new(
                Box::new(FaultyBackend::starting_at(
                    SimulatorBackend::new(seed),
                    FaultSpec::transient(1.0, seed),
                    global,
                )),
                RetryPolicy {
                    max_attempts: 2,
                    ..RetryPolicy::default()
                },
            ))
        })
    }

    /// Wraps the simulator with a fixed wall-clock delay per execution —
    /// the hedge tests' "slow device".
    struct SlowBackend {
        inner: SimulatorBackend,
        delay: Duration,
    }

    impl QuantumBackend for SlowBackend {
        fn name(&self) -> &str {
            "slow-sim"
        }
        fn n_qubits(&self) -> usize {
            self.inner.n_qubits()
        }
        fn execute(
            &mut self,
            circuit: &Circuit,
            shots: Option<usize>,
        ) -> Result<Measurements, BackendError> {
            std::thread::sleep(self.delay);
            self.inner.execute(circuit, shots)
        }
    }

    fn slow_device(model: DeviceModel, delay_ms: u64) -> FleetDevice {
        FleetDevice::new(model, move |_global, seed| {
            Ok(ResilientExecutor::new(
                Box::new(SlowBackend {
                    inner: SimulatorBackend::new(seed),
                    delay: Duration::from_millis(delay_ms),
                }),
                RetryPolicy::default(),
            ))
        })
    }

    fn config() -> FleetConfig {
        FleetConfig {
            seed: 0xf1ee7,
            pilots: 1,
            engine_workers: 1,
            hedge: None,
            ..FleetConfig::default()
        }
    }

    /// A device whose jobs flake with probability `rate` per attempt but
    /// usually succeed within the retry budget — and whose drift is NOT
    /// declared to the router, so static scoring cannot see it.
    fn flaky_device(model: DeviceModel, rate: f64) -> FleetDevice {
        FleetDevice::new(model, move |global, seed| {
            Ok(ResilientExecutor::new(
                Box::new(FaultyBackend::starting_at(
                    SimulatorBackend::new(seed),
                    FaultSpec::transient(rate, seed),
                    global,
                )),
                RetryPolicy {
                    max_attempts: 4,
                    ..RetryPolicy::default()
                },
            ))
        })
    }

    #[test]
    fn predicted_policy_learns_to_avoid_an_undeclared_flaky_device() {
        // santiago scores best statically and declares no drift, but
        // 55% of its attempts flake. Static scoring routes to it
        // forever; the tracker reads the retry pressure out of the
        // report stream and reroutes.
        let mut cfg = config();
        cfg.score_policy = ScorePolicy::Predicted;
        cfg.calibration = CalibConfig {
            min_observations: 6,
            ..CalibConfig::default()
        };
        let router = FleetRouter::new(
            cfg,
            vec![
                flaky_device(presets::santiago(), 0.55),
                sim_device(presets::quito()),
            ],
        )
        .unwrap();
        for k in 0..40 {
            let t = router.submit(job(k)).unwrap();
            router.wait(t).unwrap();
        }
        let late = router.wait(router.submit(job(40)).unwrap()).unwrap();
        assert_eq!(late.device, presets::quito().name(), "learned reroute");
        let health = router.calibration_health();
        assert_eq!(health.devices.len(), 2);
        assert_eq!(health.devices[0].name, presets::santiago().name());
        // The tracker warm-starts at each device's declared calibration
        // and reroutes as soon as the blended score flips, so the flaky
        // device's absolute estimate stays modest — what matters is that
        // it climbed above its declared prior while the clean device's
        // fell below its own, flipping the learned ranking.
        let flaky_estimate = health.devices[0].estimate.expect("warm after 40 jobs");
        let steady_estimate = health.devices[1].estimate.expect("warm after 40 jobs");
        let flaky_prior = mean_error_sum(&presets::santiago());
        assert!(
            flaky_estimate > flaky_prior,
            "tracker saw the flake rate: estimate {flaky_estimate} vs declared {flaky_prior}"
        );
        assert!(
            flaky_estimate > steady_estimate,
            "tracker ranks the flaky device riskier: {flaky_estimate} vs {steady_estimate}"
        );
        assert_eq!(health.applied, 41, "every delivery advanced the ticket");
        // Every prediction-driven decision replays to its recorded
        // winner from the trace alone.
        let trace = router.calib_trace();
        assert!(!trace.decisions.is_empty());
        for d in &trace.decisions {
            assert_eq!(qnat_calib::replay_decision(d), Some(d.chosen), "job {}", d.job);
        }
        // At least one late decision was actually driven by a predicted
        // noise term.
        assert!(trace.decisions.iter().any(|d| d
            .candidates
            .iter()
            .any(|c| c.source == NoiseSource::Predicted)));
    }

    #[test]
    fn static_policy_records_no_calib_decisions_but_still_tracks() {
        let router = FleetRouter::new(
            config(),
            vec![sim_device(presets::quito()), sim_device(presets::santiago())],
        )
        .unwrap();
        for k in 0..12 {
            let t = router.submit(job(k)).unwrap();
            router.wait(t).unwrap();
        }
        assert!(router.calib_trace().decisions.is_empty());
        let health = router.calibration_health();
        assert_eq!(health.applied, 12, "tracker observes under Static too");
        assert!(health.devices.iter().any(|d| d.observations > 0));
    }

    #[test]
    fn routes_every_job_to_the_lowest_noise_idle_device() {
        // santiago's static mean errors are strictly below quito's.
        let router = FleetRouter::new(
            config(),
            vec![sim_device(presets::quito()), sim_device(presets::santiago())],
        )
        .unwrap();
        let tickets: Vec<FleetTicket> =
            (0..6).map(|k| router.submit(job(k)).unwrap()).collect();
        for &t in &tickets {
            let outcome = router.wait(t).expect("delivered");
            assert!(outcome.result.is_ok());
            assert_eq!(outcome.device, presets::santiago().name());
            assert_eq!(outcome.attempts, 1);
            assert!(!outcome.hedged);
        }
        let trace = router.trace();
        assert_eq!(trace.jobs.len(), 6);
        for jt in &trace.jobs {
            assert_eq!(jt.winner, Some(0));
            assert_eq!(jt.attempts[0].kind, AttemptKind::Primary);
            assert_eq!(jt.attempts[0].disposition, Disposition::Won);
            assert_eq!(
                jt.seed,
                splitmix64(0xf1ee7 ^ splitmix64(jt.job)),
                "fleet seeds stay splitmix64(seed ^ splitmix64(job))"
            );
        }
        assert_eq!(router.stats().failovers, 0);
    }

    #[test]
    fn drift_aware_scoring_reroutes_as_the_preferred_device_degrades() {
        // santiago starts cleaner but degrades fast (linear gate-error
        // drift); quito is static. Routing scores evaluate the *drift
        // cursor* at each job index, so late jobs flip to quito without
        // a single failure being observed.
        let drift = FaultSpec {
            gate_drift_per_job: 0.9,
            ..FaultSpec::none()
        };
        let santiago = sim_device(presets::santiago()).with_faults(drift);
        let router = FleetRouter::new(
            config(),
            vec![santiago, sim_device(presets::quito())],
        )
        .unwrap();
        let early = router.wait(router.submit(job(0)).unwrap()).unwrap();
        assert_eq!(early.device, presets::santiago().name());
        // By job 40 santiago's drifted estimate dwarfs quito's static one.
        for k in 1..40 {
            router.wait(router.submit(job(k)).unwrap()).unwrap();
        }
        let late = router.wait(router.submit(job(40)).unwrap()).unwrap();
        assert_eq!(late.device, presets::quito().name());
        assert_eq!(router.stats().failovers, 0, "rerouting, not failover");
    }

    #[test]
    fn failover_rescues_every_job_when_the_best_device_is_dead() {
        // santiago scores best but every job on it fails; the router must
        // deliver 100% Ok via quito with zero caller-visible refusals.
        let router = FleetRouter::new(
            config(),
            vec![dead_device(presets::santiago()), sim_device(presets::quito())],
        )
        .unwrap();
        let tickets: Vec<FleetTicket> =
            (0..10).map(|k| router.submit(job(k)).unwrap()).collect();
        for &t in &tickets {
            let outcome = router.wait(t).expect("delivered");
            assert!(outcome.result.is_ok(), "failover rescued job {t}");
            assert_eq!(outcome.device, presets::quito().name());
        }
        let stats = router.stats();
        assert_eq!(stats.completed, 10);
        assert!(stats.failovers >= 1);
        let trace = router.trace();
        // Job 0 ran before any health signal existed, so it must have
        // been attempted on santiago first and failed over live.
        assert!(trace.jobs[0].attempts.len() >= 2);
        for jt in &trace.jobs {
            let win = jt.winner.expect("winner recorded");
            assert_eq!(jt.attempts[win].device, presets::quito().name());
            assert_eq!(jt.attempts[win].disposition, Disposition::Won);
            for a in &jt.attempts {
                if a.device == presets::santiago().name() {
                    // Every santiago attempt either ran and failed or was
                    // fast-failed by its open breaker.
                    assert!(matches!(
                        a.disposition,
                        Disposition::Failed(_) | Disposition::FastFailed
                    ));
                }
            }
        }
    }

    #[test]
    fn all_devices_down_is_a_typed_refusal() {
        let cfg = FleetConfig {
            breaker: BreakerPolicy {
                window: 4,
                failure_threshold: 0.5,
                min_samples: 2,
                cooldown_jobs: 10_000,
                ..BreakerPolicy::default()
            },
            quarantine: QuarantinePolicy {
                trip_threshold: 1,
                probe_every: 1_000_000,
            },
            ..config()
        };
        let router = FleetRouter::new(
            cfg,
            vec![dead_device(presets::santiago()), dead_device(presets::quito())],
        )
        .unwrap();
        // Pump jobs until both breakers trip and both devices quarantine.
        let mut k = 0;
        while router.stats().quarantined < 2 {
            let t = router.submit(job(k)).expect("fleet not yet fully down");
            let outcome = router.wait(t).expect("delivered");
            assert!(outcome.result.is_err(), "both devices are dead");
            k += 1;
            assert!(k < 200, "quarantine must engage");
        }
        let err = router.submit(job(k)).expect_err("fleet is fully down");
        assert_eq!(err, FleetError::AllDevicesDown { devices: 2 });
        assert!(router.stats().refused_all_down >= 1);
    }

    #[test]
    fn hedged_duplicate_wins_against_a_slow_primary() {
        let cfg = FleetConfig {
            hedge: Some(HedgePolicy {
                percentile: 50.0,
                min_samples: 0,
                floor_ms: 20,
            }),
            ..config()
        };
        // santiago scores best but stalls 300ms per job; quito is fast.
        let router = FleetRouter::new(
            cfg,
            vec![
                slow_device(presets::santiago(), 300),
                sim_device(presets::quito()),
            ],
        )
        .unwrap();
        let t = router.submit(job(0)).unwrap();
        let outcome = router.wait(t).expect("delivered");
        assert!(outcome.result.is_ok());
        assert!(outcome.hedged);
        assert_eq!(outcome.device, presets::quito().name());
        let stats = router.stats();
        assert_eq!(stats.hedges, 1);
        assert_eq!(stats.hedge_wins, 1);
        let trace = router.trace();
        let jt = &trace.jobs[0];
        assert_eq!(jt.attempts.len(), 2);
        assert_eq!(jt.attempts[0].kind, AttemptKind::Primary);
        assert_eq!(jt.attempts[0].disposition, Disposition::Lost);
        assert_eq!(jt.attempts[1].kind, AttemptKind::Hedge);
        assert_eq!(jt.attempts[1].disposition, Disposition::Won);
        assert_eq!(jt.winner, Some(1));
        // The losing primary replays too — same seed, same device — but
        // the delivered outcome replays from the *winner*.
        let (result, _report) = replay_job(
            &[
                slow_device(presets::santiago(), 0),
                sim_device(presets::quito()),
            ],
            jt,
            &job(0),
            None,
        )
        .expect("winner is replayable");
        assert_eq!(result, outcome.result);
    }

    #[test]
    fn delivered_outcomes_replay_bitwise_from_their_trace() {
        let devices = vec![
            sim_device(presets::santiago()),
            dead_device(presets::quito()).named("quito-dead"),
        ];
        let router = FleetRouter::new(config(), devices.clone()).unwrap();
        let tickets: Vec<FleetTicket> =
            (0..8).map(|k| router.submit(job(k)).unwrap()).collect();
        let outcomes: Vec<FleetOutcome> = tickets
            .iter()
            .map(|&t| router.wait(t).expect("delivered"))
            .collect();
        let trace = router.trace();
        drop(router);
        for (jt, outcome) in trace.jobs.iter().zip(&outcomes) {
            let (result, report) =
                replay_job(&devices, jt, &job(jt.job as usize), None).expect("replayable");
            assert_eq!(result, outcome.result, "job {}", jt.job);
            assert_eq!(report, outcome.report, "job {}", jt.job);
        }
    }

    #[test]
    fn drain_delivers_queued_work_and_drop_discards_it() {
        let router =
            FleetRouter::new(config(), vec![sim_device(presets::santiago())]).unwrap();
        let tickets: Vec<FleetTicket> =
            (0..5).map(|k| router.submit(job(k)).unwrap()).collect();
        for &t in &tickets {
            assert!(router.wait(t).is_some());
        }
        let stats = router.drain();
        assert_eq!(stats.submitted, 5);
        assert_eq!(stats.completed, 5);

        let router =
            FleetRouter::new(config(), vec![sim_device(presets::santiago())]).unwrap();
        let _t = router.submit(job(0)).unwrap();
        drop(router); // must not hang
    }

    #[test]
    fn empty_fleet_is_rejected() {
        assert_eq!(
            FleetRouter::new(config(), Vec::new()).err(),
            Some(FleetError::NoDevices)
        );
    }
}
