//! Fleet device descriptors: one entry per emulated QPU the router can
//! send work to.
//!
//! A [`FleetDevice`] couples three things the router needs about a
//! device: its **name** (also the key of its circuit breaker in the
//! shared `HealthRegistry`), its **calibration data** plus optional
//! [`FaultSpec`] (from which the router estimates the *current* drifted
//! error rate when scoring candidates), and its **factory** — the same
//! `(global, seed) -> ResilientExecutor` contract the batch and serving
//! layers use, so any backend stack those layers accept serves in a
//! fleet unchanged.

use qnat_core::executor::{ResilientExecutor, RetryPolicy};
use qnat_noise::backend::{BackendError, EmulatorBackend};
use qnat_noise::device::DeviceModel;
use qnat_noise::fault::{FaultSpec, FaultyBackend};
use std::fmt;
use std::sync::Arc;

/// The executor-factory contract every fleet device serves jobs through:
/// `(global job index, per-job seed) -> executor`. Identical to the batch
/// and serving layers' factory, which is what keeps routed execution
/// replayable through [`qnat_core::batch::run_job`].
pub type DeviceFactory =
    dyn Fn(u64, u64) -> Result<ResilientExecutor, BackendError> + Send + Sync;

/// One routable device: name, noise model (for scoring), optional fault
/// spec (for *drift-aware* scoring), and the executor factory that
/// actually runs jobs.
#[derive(Clone)]
pub struct FleetDevice {
    name: String,
    model: DeviceModel,
    faults: Option<FaultSpec>,
    factory: Arc<DeviceFactory>,
}

impl fmt::Debug for FleetDevice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FleetDevice")
            .field("name", &self.name)
            .field("model", &self.model.name())
            .field("faults", &self.faults)
            .finish_non_exhaustive()
    }
}

impl FleetDevice {
    /// A device named after `model`, serving jobs through `factory`.
    ///
    /// The router scores it by the model's *static* calibration until a
    /// fault spec is attached with [`FleetDevice::with_faults`].
    pub fn new<F>(model: DeviceModel, factory: F) -> Self
    where
        F: Fn(u64, u64) -> Result<ResilientExecutor, BackendError> + Send + Sync + 'static,
    {
        FleetDevice {
            name: model.name().to_owned(),
            model,
            faults: None,
            factory: Arc::new(factory),
        }
    }

    /// Declares the drift trajectory this device's error rates follow, so
    /// the router can score it by its *instantaneous* (drifted) error
    /// rate instead of the static calibration. The spec should match what
    /// the factory's backends actually apply — for the
    /// [`FleetDevice::emulated`] constructor it always does.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultSpec) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Overrides the device (and breaker-key) name — needed when two
    /// fleet entries share one preset model.
    #[must_use]
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// The standard emulated device: a density-matrix [`EmulatorBackend`]
    /// over the first `n_qubits` of `model` (emulation cost is
    /// exponential, so fleets run presets on a subdevice), decorated with
    /// `faults` positioned at the *global* job index — every per-job
    /// backend samples its slice of one device-wide calibration
    /// trajectory, exactly like the batch pool. Fault rolls are
    /// decorrelated per job by substituting the per-job seed, while
    /// `drift_seed` keeps the trajectory shared.
    ///
    /// # Errors
    ///
    /// [`BackendError::InvalidConfig`] when `model` has fewer than
    /// `n_qubits` qubits, plus whatever the emulator rejects about the
    /// sliced model.
    pub fn emulated(
        model: DeviceModel,
        n_qubits: usize,
        faults: FaultSpec,
        retry: RetryPolicy,
    ) -> Result<Self, BackendError> {
        let physical: Vec<usize> = (0..n_qubits).collect();
        let sliced = model
            .subdevice(&physical)
            .map_err(|e| BackendError::InvalidConfig {
                reason: format!("cannot slice {}: {e}", model.name()),
            })?;
        // Validate the emulator once at fleet-build time, not per job.
        EmulatorBackend::new(&sliced, 0)?;
        let name = model.name().to_owned();
        let backend_model = sliced.clone();
        let factory = move |global: u64, seed: u64| -> Result<ResilientExecutor, BackendError> {
            let spec = FaultSpec { seed, ..faults };
            Ok(ResilientExecutor::new(
                Box::new(FaultyBackend::starting_at(
                    EmulatorBackend::new(&backend_model, seed)?,
                    spec,
                    global,
                )),
                retry.clone(),
            ))
        };
        Ok(FleetDevice {
            name,
            model: sliced,
            faults: Some(faults),
            factory: Arc::new(factory),
        })
    }

    /// The device (and breaker-key) name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The calibration model the router scores against.
    pub fn model(&self) -> &DeviceModel {
        &self.model
    }

    /// The declared drift spec, if any.
    pub fn faults(&self) -> Option<&FaultSpec> {
        self.faults.as_ref()
    }

    /// The executor factory (shared with every engine/replay that needs
    /// it).
    pub fn factory(&self) -> Arc<DeviceFactory> {
        Arc::clone(&self.factory)
    }

    /// The factory as a plain reference, for direct [`run_job`] replay.
    ///
    /// [`run_job`]: qnat_core::batch::run_job
    pub fn factory_ref(&self) -> &DeviceFactory {
        &*self.factory
    }
}
