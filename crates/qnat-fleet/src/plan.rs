//! Fleet-wide plan precompilation: one shared [`PlanCache`] compiles each
//! `(block, device-calibration, transpile level)` combination exactly once
//! across the whole fleet.
//!
//! The router itself moves *compiled* [`BatchJob`]s — it never transpiles.
//! What did transpile, before this module, was every caller turning a
//! [`Qnn`] into per-device jobs: `n_devices × n_blocks` routing passes per
//! deployment, repeated on every redeploy. [`plan_fleet`] runs those
//! through [`Qnn::route_plan_cached`] instead, so two fleet entries
//! sharing one preset calibration share one compiled plan, and a redeploy
//! against unchanged calibration compiles nothing at all. Drifted or
//! rescaled calibration changes the device fingerprint and recompiles —
//! the same invalidation rule the level-3 noise-adaptive layout needs.
//!
//! Cache hits return the identical plan, so routed jobs built from a
//! cached [`DevicePlan`] are bitwise equal to freshly compiled ones —
//! replay through [`replay_job`](crate::replay_job) is unaffected.

use crate::device::FleetDevice;
use qnat_core::batch::BatchJob;
use qnat_core::compile_cache::PlanCache;
use qnat_core::infer::BlockPlan;
use qnat_core::model::Qnn;
use qnat_noise::device::InvalidDeviceError;

/// One fleet device's compiled block plans.
#[derive(Debug, Clone)]
pub struct DevicePlan {
    /// The device (and breaker-key) name the plans were compiled for.
    pub device: String,
    /// One compiled plan per QNN block, block-index order.
    pub plans: Vec<BlockPlan>,
}

impl DevicePlan {
    /// Builds the submittable job for one input row on `block_idx`:
    /// encoder angles for `row` plus the block's trained parameters,
    /// bound into the cached symbolic circuit. Mirrors the serving
    /// layer's binding exactly, so a fleet job and a served ticket for
    /// the same row run the same circuit.
    pub fn job(&self, qnn: &Qnn, block_idx: usize, row: &[f64]) -> BatchJob {
        let block = &qnn.blocks()[block_idx];
        let mut params = block.encoder.angles(row);
        params.extend_from_slice(qnn.block_params(block_idx));
        BatchJob::exact(self.plans[block_idx].lowered.bind(&params))
    }

    /// Maps a job's measured expectations back to the block's logical
    /// observable order (the routed window may permute qubits).
    pub fn read_out(&self, block_idx: usize, expectations: &[f64]) -> Vec<f64> {
        self.plans[block_idx]
            .obs
            .iter()
            .map(|&w| expectations[w])
            .collect()
    }
}

/// Compiles `qnn` for every fleet device through one shared `cache`.
///
/// Returns one [`DevicePlan`] per device, in input order. Devices that
/// share a calibration fingerprint (e.g. two entries over one preset)
/// share cache entries; calling again with the same arguments is all
/// hits.
///
/// # Errors
///
/// [`InvalidDeviceError`] if any device is too small for the model —
/// nothing is cached for the failing `(block, device)` pair.
pub fn plan_fleet(
    qnn: &Qnn,
    devices: &[FleetDevice],
    opt_level: u8,
    cache: &PlanCache,
) -> Result<Vec<DevicePlan>, InvalidDeviceError> {
    devices
        .iter()
        .map(|d| {
            Ok(DevicePlan {
                device: d.name().to_owned(),
                plans: qnn.route_plan_cached(d.model(), opt_level, cache)?,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qnat_core::executor::RetryPolicy;
    use qnat_core::model::QnnConfig;
    use qnat_noise::fault::FaultSpec;
    use qnat_noise::presets;

    fn fleet() -> Vec<FleetDevice> {
        let retry = RetryPolicy::default();
        vec![
            FleetDevice::emulated(presets::santiago(), 4, FaultSpec::transient(0.0, 1), retry.clone())
                .expect("santiago"),
            FleetDevice::emulated(presets::yorktown(), 4, FaultSpec::transient(0.0, 1), retry.clone())
                .expect("yorktown"),
            FleetDevice::emulated(presets::santiago(), 4, FaultSpec::transient(0.0, 1), retry)
                .expect("santiago twin")
                .named("santiago-b"),
        ]
    }

    #[test]
    fn shared_calibration_shares_cache_entries() {
        let qnn = Qnn::new(QnnConfig::standard(16, 4, 2, 2), 5);
        let devices = fleet();
        let cache = PlanCache::new();
        let plans = plan_fleet(&qnn, &devices, 2, &cache).expect("plan fleet");
        assert_eq!(plans.len(), 3);
        // 3 devices but only 2 distinct calibrations: the santiago twin
        // hits the entries its sibling populated.
        let stats = cache.stats();
        assert_eq!(stats.entries, 2 * qnn.blocks().len());
        assert_eq!(stats.hits as usize, qnn.blocks().len());
        // Redeploying the whole fleet compiles nothing.
        plan_fleet(&qnn, &devices, 2, &cache).expect("replan fleet");
        assert_eq!(cache.misses(), stats.misses);
    }

    #[test]
    fn cached_fleet_jobs_match_uncached_routing() {
        let qnn = Qnn::new(QnnConfig::standard(16, 4, 1, 2), 9);
        let devices = fleet();
        let cache = PlanCache::new();
        let cached = plan_fleet(&qnn, &devices, 2, &cache).expect("cached");
        let row = vec![0.3; 16];
        for (dp, dev) in cached.iter().zip(&devices) {
            let plain = qnn.route_plan(dev.model(), 2).expect("plain route");
            for b in 0..qnn.blocks().len() {
                let block = &qnn.blocks()[b];
                let mut params = block.encoder.angles(&row);
                params.extend_from_slice(qnn.block_params(b));
                assert_eq!(dp.job(&qnn, b, &row).circuit, plain[b].lowered.bind(&params));
                assert_eq!(dp.plans[b].obs, plain[b].obs);
            }
        }
    }
}
