//! # qnat-fleet — noise-aware routing over a fleet of serving engines
//!
//! QuantumNAT (Wang et al., DAC 2022) trains models that stay accurate
//! *on a specific noisy device*; real deployments have **many** devices
//! with different calibrations, each drifting and failing independently.
//! This crate adds the fleet layer on top of `qnat-serve`:
//!
//! * [`FleetDevice`] — one routable device: a name (its breaker key), a
//!   calibration model plus optional drift spec for scoring, and the
//!   standard `(global, seed) -> executor` factory.
//! * [`FleetRouter`] — one `ServeEngine` per device behind a shared
//!   `HealthRegistry`; every submission is scored per device by lane
//!   depth, breaker state and the *current drifted* error-rate estimate,
//!   routed to the best candidate, **failed over** to the next-best on
//!   refusal or error, optionally **hedged** onto a second device when
//!   slow, and quarantine-managed so a flapping device is evicted and
//!   probe-readmitted. The fleet degrades gracefully to its last healthy
//!   engine; only with none left does [`FleetRouter::submit`] refuse
//!   with [`FleetError::AllDevicesDown`].
//! * [`replay_job`] — bitwise re-execution of any delivered attempt from
//!   its recorded [`RoutingTrace`], because per-job seeds stay
//!   `splitmix64(seed ^ splitmix64(job))` no matter which device ran the
//!   job (property-pinned in `tests/fleet_props.rs`).
//! * [`plan_fleet`] — fleet-wide plan precompilation through one shared
//!   [`qnat_core::compile_cache::PlanCache`]: devices sharing a
//!   calibration fingerprint share compiled block plans, and redeploying
//!   against unchanged calibration compiles nothing.
//! * [`ScorePolicy`] — the routing score's noise source: `Static`
//!   (declared calibration, drifted along the declared cursor) or
//!   `Predicted` (the `qnat-calib` [`qnat_calib::CalibrationTracker`]'s
//!   learned estimate from the live report stream, with static fallback
//!   while cold). The tracker observes deliveries in fleet-ticket order
//!   under both policies; predicted decisions are recorded in a
//!   replayable [`qnat_calib::CalibTrace`]
//!   ([`FleetRouter::calib_trace`]).

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod device;
pub mod plan;
pub mod router;

pub use device::{DeviceFactory, FleetDevice};
pub use qnat_calib::{
    replay_decision, CalibConfig, CalibDecision, CalibTrace, CalibrationHealth, CandidateScore,
    DeviceCalibrationView, NoiseSource,
};
pub use plan::{plan_fleet, DevicePlan};
pub use router::{
    replay_job, AttemptKind, AttemptTrace, DeviceHealthView, Disposition, FleetConfig, FleetError,
    FleetHealth, FleetOutcome, FleetPoll, FleetRouter, FleetStats, FleetTicket, HedgePolicy,
    JobTrace, QuarantinePolicy, RoutingTrace, ScorePolicy, ScoreWeights,
};
