//! Property pin for the fleet determinism contract: whatever path a job
//! took through the router — primary, failover, hedge, probe — the
//! delivered outcome re-executes **bitwise identically** from its
//! recorded [`JobTrace`] via [`replay_job`], because per-job seeds stay
//! `splitmix64(fleet_seed ^ splitmix64(job))` on every device.

use proptest::prelude::*;
use qnat_core::batch::BatchJob;
use qnat_core::executor::{splitmix64, ResilientExecutor, RetryPolicy};
use qnat_fleet::{
    replay_decision, replay_job, CalibConfig, Disposition, FleetConfig, FleetDevice, FleetRouter,
    QuarantinePolicy, ScorePolicy,
};
use qnat_noise::fault::{FaultSpec, FaultyBackend};
use qnat_noise::presets;
use qnat_noise::backend::SimulatorBackend;
use qnat_sim::circuit::Circuit;
use qnat_sim::gate::Gate;

fn sim_job(angle: f64, entangle: bool) -> BatchJob {
    let mut c = Circuit::new(2);
    c.push(Gate::ry(0, angle));
    if entangle {
        c.push(Gate::cx(0, 1));
    }
    BatchJob::exact(c)
}

/// A fleet device over the statevector simulator with a transient-fault
/// decorator — failure rolls are seed-deterministic, so routed failures
/// replay exactly like routed successes.
fn flaky_device(model: qnat_noise::DeviceModel, rate: f64) -> FleetDevice {
    FleetDevice::new(model, move |global, seed| {
        Ok(ResilientExecutor::new(
            Box::new(FaultyBackend::starting_at(
                SimulatorBackend::new(seed),
                FaultSpec::transient(rate, seed),
                global,
            )),
            RetryPolicy {
                max_attempts: 2,
                ..RetryPolicy::default()
            },
        ))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every delivered job with an executable winner replays bitwise:
    /// same result (success or typed error) and same execution report.
    #[test]
    fn delivered_outcomes_replay_bitwise(
        fleet_seed in 0u64..u64::MAX,
        rate_a in 0.0f64..0.9,
        rate_b in 0.0f64..0.9,
        angles in prop::collection::vec(0.0f64..3.1, 1..10),
        entangle in prop_oneof![Just(true), Just(false)],
    ) {
        let devices = vec![
            flaky_device(presets::santiago(), rate_a),
            flaky_device(presets::quito(), rate_b).named("quito-flaky"),
        ];
        let config = FleetConfig {
            seed: fleet_seed,
            pilots: 2,
            engine_workers: 1,
            hedge: None,
            quarantine: QuarantinePolicy { trip_threshold: 3, probe_every: 4 },
            ..FleetConfig::default()
        };
        let router = FleetRouter::new(config, devices.clone()).unwrap();
        let jobs: Vec<BatchJob> =
            angles.iter().map(|&a| sim_job(a, entangle)).collect();
        let tickets: Vec<u64> = jobs
            .iter()
            .map(|j| router.submit(j.clone()).unwrap())
            .collect();
        let outcomes: Vec<_> = tickets
            .iter()
            .map(|&t| router.wait(t).expect("delivered"))
            .collect();
        let trace = router.trace();
        drop(router);

        prop_assert_eq!(trace.jobs.len(), jobs.len());
        for (jt, outcome) in trace.jobs.iter().zip(&outcomes) {
            // The recorded seed is the pure derivation from the fleet
            // seed and the fleet ticket.
            prop_assert_eq!(
                jt.seed,
                splitmix64(fleet_seed ^ splitmix64(jt.job))
            );
            let Some(win) = jt.winner else { continue };
            let replayable = matches!(
                jt.attempts[win].disposition,
                Disposition::Won | Disposition::Failed(_)
            );
            if !replayable {
                // Fast-failed deliveries never ran: the documented
                // non-replayable relaxation.
                prop_assert!(replay_job(
                    &devices,
                    jt,
                    &jobs[jt.job as usize],
                    None
                ).is_none());
                continue;
            }
            let (result, report) = replay_job(
                &devices,
                jt,
                &jobs[jt.job as usize],
                None,
            ).expect("executable winner replays");
            prop_assert_eq!(&result, &outcome.result, "job {}", jt.job);
            prop_assert_eq!(&report, &outcome.report, "job {}", jt.job);
        }
    }

    /// ISSUE 9: every prediction-driven routing decision a live router
    /// records replays bitwise from its [`qnat_fleet::CalibTrace`] row
    /// alone — [`replay_decision`] recovers the routed winner, and the
    /// recorded per-candidate score matches an exact recomputation from
    /// its components, for arbitrary fleet seeds, fault rates and
    /// workloads.
    #[test]
    fn routed_calib_decisions_replay_bitwise(
        fleet_seed in 0u64..u64::MAX,
        rate_a in 0.0f64..0.7,
        rate_b in 0.0f64..0.7,
        angles in prop::collection::vec(0.0f64..3.1, 4..16),
    ) {
        let devices = vec![
            flaky_device(presets::santiago(), rate_a),
            flaky_device(presets::quito(), rate_b).named("quito-flaky"),
        ];
        let config = FleetConfig {
            seed: fleet_seed,
            pilots: 1,
            engine_workers: 1,
            hedge: None,
            score_policy: ScorePolicy::Predicted,
            calibration: CalibConfig {
                min_observations: 2,
                ..CalibConfig::default()
            },
            ..FleetConfig::default()
        };
        let router = FleetRouter::new(config, devices).unwrap();
        for &a in &angles {
            let t = router.submit(sim_job(a, true)).unwrap();
            router.wait(t).expect("delivered");
        }
        let trace = router.calib_trace();
        // Quarantine recovery probes bypass the scored path while
        // failover re-scores the survivors, so jobs and decisions don't
        // pair 1:1 — but routing a job never scores more rounds than
        // there are devices.
        prop_assert!(!trace.decisions.is_empty());
        prop_assert!(trace.decisions.len() <= angles.len() * 2);
        for d in &trace.decisions {
            prop_assert_eq!(
                replay_decision(d),
                Some(d.chosen),
                "job {} must replay to its routed winner",
                d.job
            );
            for c in &d.candidates {
                let recomputed =
                    d.depth_weight * c.depth + d.noise_weight * c.noise + c.penalty;
                prop_assert_eq!(
                    c.score.to_bits(),
                    recomputed.to_bits(),
                    "job {} candidate {} score must recompute bitwise",
                    d.job,
                    c.index
                );
            }
        }
    }
}
