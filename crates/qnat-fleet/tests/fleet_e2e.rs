//! Fleet-level acceptance tests: graceful degradation when the best
//! device goes terminally dark mid-run, noise-aware routing beating
//! static and random device choice on accuracy, and the
//! quarantine-starvation regression (breakers must keep serving cooldown
//! with zero traffic).

use qnat_core::batch::{run_job, BatchJob};
use qnat_core::executor::{splitmix64, ResilientExecutor, RetryPolicy};
use qnat_core::health::{BreakerPolicy, BreakerState};
use qnat_fleet::{FleetConfig, FleetDevice, FleetOutcome, FleetRouter, QuarantinePolicy};
use qnat_noise::backend::{BackendError, QuantumBackend, SimulatorBackend};
use qnat_noise::fault::{DriftModel, FaultSpec, FaultyBackend};
use qnat_noise::presets;
use qnat_sim::circuit::Circuit;
use qnat_sim::gate::Gate;

fn job(k: usize) -> BatchJob {
    let mut c = Circuit::new(2);
    c.push(Gate::ry(0, 0.15 + 0.07 * k as f64));
    c.push(Gate::cx(0, 1));
    c.push(Gate::rz(1, 0.3 + 0.02 * k as f64));
    BatchJob::exact(c)
}

fn fleet_config() -> FleetConfig {
    FleetConfig {
        seed: 0x5eed,
        pilots: 1,
        engine_workers: 1,
        hedge: None,
        ..FleetConfig::default()
    }
}

/// The ISSUE acceptance scenario: the best-scoring device serves the
/// early jobs, then goes terminally dark mid-run (sessionized
/// recalibration drift *plus* a hard outage); the router must complete
/// 100% of jobs via failover with zero client-visible refusals.
#[test]
fn dark_device_failover_completes_every_job() {
    const DARK_AT: u64 = 20;
    const JOBS: usize = 60;
    // santiago: preferred (lowest static noise), StepRecalibration drift,
    // total outage from global job index 20 onward.
    let drift = FaultSpec {
        gate_drift_per_job: 0.02,
        readout_drift_per_job: 0.01,
        drift: DriftModel::StepRecalibration { interval: 10 },
        seed: 7,
        drift_seed: 7,
        ..FaultSpec::none()
    };
    let santiago = FleetDevice::new(presets::santiago(), move |global, seed| {
        let rate = if global < DARK_AT { 0.0 } else { 1.0 };
        let spec = FaultSpec {
            transient_failure_rate: rate,
            seed,
            ..drift
        };
        Ok(ResilientExecutor::new(
            Box::new(FaultyBackend::starting_at(
                SimulatorBackend::new(seed),
                spec,
                global,
            )),
            RetryPolicy {
                max_attempts: 2,
                ..RetryPolicy::default()
            },
        ))
    })
    .with_faults(drift);
    // lima: noisier calibration, but steady.
    let lima = FleetDevice::new(presets::lima(), |_global, seed| {
        Ok(ResilientExecutor::new(
            Box::new(SimulatorBackend::new(seed)),
            RetryPolicy::default(),
        ))
    });
    let router = FleetRouter::new(fleet_config(), vec![santiago, lima]).unwrap();

    let mut outcomes: Vec<FleetOutcome> = Vec::new();
    for k in 0..JOBS {
        // Zero client-visible refusals: every submit is accepted.
        let t = router.submit(job(k)).expect("no submission refused");
        outcomes.push(router.wait(t).expect("every job delivered"));
    }
    for (k, o) in outcomes.iter().enumerate() {
        assert!(o.result.is_ok(), "job {k} must be rescued: {:?}", o.result);
    }
    let stats = router.stats();
    assert_eq!(stats.submitted, JOBS as u64);
    assert_eq!(stats.completed, JOBS as u64, "100% completion");
    assert_eq!(stats.refused_all_down, 0);
    assert!(stats.failovers >= 1, "the dark transition forces failover");
    // Early jobs ran on the preferred device, late jobs on the survivor.
    assert_eq!(outcomes[0].device, presets::santiago().name());
    assert_eq!(outcomes[JOBS - 1].device, presets::lima().name());
    // The trace records the whole story, sorted by fleet ticket.
    let trace = router.trace();
    assert_eq!(trace.jobs.len(), JOBS);
    assert!(trace.jobs.windows(2).all(|w| w[0].job < w[1].job));
}

/// Accuracy-per-attempt sweep: drift-aware routing vs always-the-best-
/// calibration device (static) vs a seeded pseudo-random device choice.
/// The routed fleet must beat both on mean absolute expectation error.
/// The measured numbers are recorded in EXPERIMENTS.md §Fleet.
#[test]
fn noise_aware_routing_beats_static_and_random() {
    const JOBS: usize = 40;
    let retry = RetryPolicy::default();
    // Device A: best static calibration, but degrading fast.
    let drifting = FaultSpec {
        gate_drift_per_job: 0.3,
        readout_drift_per_job: 0.3,
        seed: 11,
        drift_seed: 11,
        ..FaultSpec::none()
    };
    let device_a =
        FleetDevice::emulated(presets::santiago(), 2, drifting, retry.clone()).unwrap();
    // Device B: noisier calibration, but stable.
    let device_b =
        FleetDevice::emulated(presets::quito(), 2, FaultSpec::none(), retry.clone()).unwrap();

    // Ideal (noise-free, exact) expectations per job.
    let ideal: Vec<Vec<f64>> = (0..JOBS)
        .map(|k| {
            let mut sim = SimulatorBackend::new(0);
            sim.execute(&job(k).circuit, None).unwrap().expectations
        })
        .collect();
    let error_of = |k: usize, m: &qnat_noise::backend::Measurements| -> f64 {
        m.expectations
            .iter()
            .zip(&ideal[k])
            .map(|(a, b)| (a - b).abs())
            .sum::<f64>()
            / ideal[k].len() as f64
    };
    let seed_of = |k: u64| splitmix64(0x5eed ^ splitmix64(k));

    // Arm 1: the routed fleet.
    let router =
        FleetRouter::new(fleet_config(), vec![device_a.clone(), device_b.clone()]).unwrap();
    let tickets: Vec<u64> = (0..JOBS).map(|k| router.submit(job(k)).unwrap()).collect();
    let mut routed_err = 0.0;
    for (k, &t) in tickets.iter().enumerate() {
        let o = router.wait(t).expect("delivered");
        routed_err += error_of(k, o.result.as_ref().expect("clean devices"));
    }
    routed_err /= JOBS as f64;
    drop(router);

    // Arm 2: static — every job on the best-calibration device, same
    // seeds, same run_job core.
    let mut static_err = 0.0;
    for k in 0..JOBS {
        let (result, _) = run_job(
            device_a.factory_ref(),
            k as u64,
            seed_of(k as u64),
            &job(k),
            false,
            None,
        );
        static_err += error_of(k, &result.expect("emulator is clean"));
    }
    static_err /= JOBS as f64;

    // Arm 3: seeded pseudo-random device per job (50/50 coin).
    let mut random_err = 0.0;
    for k in 0..JOBS {
        let pick = if splitmix64(0xc01_u64 ^ splitmix64(k as u64)) & 1 == 0 {
            &device_a
        } else {
            &device_b
        };
        let (result, _) = run_job(
            pick.factory_ref(),
            k as u64,
            seed_of(k as u64),
            &job(k),
            false,
            None,
        );
        random_err += error_of(k, &result.expect("emulator is clean"));
    }
    random_err /= JOBS as f64;

    println!(
        "fleet sweep: routed={routed_err:.4} static-best={static_err:.4} random={random_err:.4}"
    );
    assert!(
        routed_err < static_err,
        "drift-aware routing ({routed_err:.4}) must beat static best-device ({static_err:.4})"
    );
    assert!(
        routed_err < random_err,
        "drift-aware routing ({routed_err:.4}) must beat random choice ({random_err:.4})"
    );
}

/// Regression for the cooldown-starvation bug: a quarantined device gets
/// zero traffic, so without idle epoch ticks its breaker would sit Open
/// forever and the device could never be re-admitted. The router must
/// tick cooldowns on every routing event, probe the half-open device
/// with a live job, and re-admit it once the breaker recloses.
#[test]
fn quarantined_device_recovers_without_traffic() {
    const HEALS_AT: u64 = 6;
    // santiago: hard-down until global job index 6, clean afterwards.
    let santiago = FleetDevice::new(presets::santiago(), |global, seed| {
        let rate = if global < HEALS_AT { 1.0 } else { 0.0 };
        Ok(ResilientExecutor::new(
            Box::new(FaultyBackend::starting_at(
                SimulatorBackend::new(seed),
                FaultSpec::transient(rate, seed),
                global,
            )),
            RetryPolicy {
                max_attempts: 2,
                ..RetryPolicy::default()
            },
        ))
    });
    let quito = FleetDevice::new(presets::quito(), |_global, seed| {
        Ok(ResilientExecutor::new(
            Box::new(SimulatorBackend::new(seed)),
            RetryPolicy::default(),
        ))
    });
    let cfg = FleetConfig {
        breaker: BreakerPolicy {
            window: 4,
            failure_threshold: 0.5,
            min_samples: 2,
            cooldown_jobs: 5,
            ..BreakerPolicy::default()
        },
        quarantine: QuarantinePolicy {
            trip_threshold: 1,
            probe_every: 3,
        },
        ..fleet_config()
    };
    let router = FleetRouter::new(cfg, vec![santiago, quito]).unwrap();

    let mut outcomes = Vec::new();
    for k in 0..40 {
        let t = router.submit(job(k)).expect("quito keeps the fleet up");
        outcomes.push(router.wait(t).expect("delivered"));
    }
    let stats = router.stats();
    assert!(
        stats.quarantined >= 1,
        "santiago must be evicted after its breaker trips: {stats:?}"
    );
    assert!(
        stats.idle_ticks >= 1,
        "zero-traffic cooldown must be served by idle ticks: {stats:?}"
    );
    assert!(
        stats.readmitted >= 1,
        "half-open probe must re-admit the healed device: {stats:?}"
    );
    let snap = router
        .health_registry()
        .snapshot(presets::santiago().name())
        .expect("breaker exists");
    assert!(snap.recoveries >= 1, "probe reclosed the breaker: {snap:?}");
    assert_eq!(snap.state, BreakerState::Closed);
    // Once healed and re-admitted, the lower-noise device wins again.
    let last = outcomes.last().unwrap();
    assert_eq!(last.device, presets::santiago().name());
    assert!(last.result.is_ok());
    // And the fleet never dropped a job along the way.
    assert_eq!(stats.completed, 40);
    assert!(outcomes.iter().all(|o| o.result.is_ok()));
}

/// `BackendError::InvalidConfig` from a too-small preset surfaces at
/// fleet-build time, not per job.
#[test]
fn emulated_device_rejects_oversized_slices() {
    let err = FleetDevice::emulated(
        presets::santiago(),
        99,
        FaultSpec::none(),
        RetryPolicy::default(),
    )
    .expect_err("santiago has nowhere near 99 qubits");
    assert!(matches!(err, BackendError::InvalidConfig { .. }));
}
