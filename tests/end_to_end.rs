//! Cross-crate integration tests: the full QuantumNAT story exercised
//! end-to-end through the public API of the umbrella crate.

use quantumnat::core::forward::{PipelineOptions, QuantizeSpec};
use quantumnat::core::infer::{infer, InferenceBackend, InferenceOptions, NormMode};
use quantumnat::core::metrics::snr;
use quantumnat::core::model::{NoiseSource, Qnn, QnnConfig};
use quantumnat::core::normalize::normalize_batch;
use quantumnat::core::train::{train, AdamConfig, TrainOptions};
use quantumnat::data::dataset::{build, Task, TaskConfig};
use quantumnat::noise::presets;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn adam(epochs: usize) -> AdamConfig {
    AdamConfig {
        lr_max: 1.5e-2,
        warmup_epochs: (epochs / 5).max(1),
        total_epochs: epochs,
        ..AdamConfig::default()
    }
}

#[test]
fn training_reaches_useful_accuracy_and_deploys() {
    let dataset = build(Task::Mnist2, &TaskConfig::small(1));
    let device = presets::santiago();
    let mut qnn = Qnn::for_device(QnnConfig::standard(16, 2, 2, 2), &device, 3).unwrap();
    let report = train(
        &mut qnn,
        &dataset,
        &TrainOptions {
            adam: adam(35),
            batch_size: 32,
            pipeline: PipelineOptions {
                normalize: true,
                quantize: None,
                quant_penalty: 0.0,
                ..PipelineOptions::baseline()
            },
            seed: 3,
        },
    )
    .unwrap();
    assert!(
        report.valid_acc > 0.7,
        "noise-free validation accuracy {}",
        report.valid_acc
    );
    // Deployment on the emulated hardware with normalization stays close.
    let dep = qnn.deploy(&device, 2).unwrap();
    let feats: Vec<Vec<f64>> = dataset.test.iter().map(|s| s.features.clone()).collect();
    let labels: Vec<usize> = dataset.test.iter().map(|s| s.label).collect();
    let mut rng = StdRng::seed_from_u64(0);
    let acc = infer(
        &qnn,
        &feats,
        &InferenceBackend::Hardware(&dep),
        &InferenceOptions {
            normalize: NormMode::BatchStats,
            quantize: None,
            process_last: false,
        },
        &mut rng,
    )
    .expect("hardware inference succeeds")
    .accuracy(&labels);
    assert!(acc > 0.6, "hardware accuracy {acc}");
}

#[test]
fn normalization_improves_snr_on_hardware() {
    // The core claim of Theorem 3.1 measured end-to-end.
    let device = presets::yorktown();
    let qnn = Qnn::for_device(QnnConfig::standard(16, 4, 2, 2), &device, 5).unwrap();
    let dep = qnn.deploy(&device, 2).unwrap();
    let dataset = build(Task::Mnist4, &TaskConfig::small(2));
    let feats: Vec<Vec<f64>> = dataset.test.iter().map(|s| s.features.clone()).collect();
    let mut rng = StdRng::seed_from_u64(1);
    let clean = infer(
        &qnn,
        &feats,
        &InferenceBackend::NoiseFree,
        &InferenceOptions::baseline(),
        &mut rng,
    )
    .unwrap();
    let noisy = infer(
        &qnn,
        &feats,
        &InferenceBackend::Hardware(&dep),
        &InferenceOptions::baseline(),
        &mut rng,
    )
    .unwrap();
    let mut c = clean.block_outputs[0].clone();
    let mut n = noisy.block_outputs[0].clone();
    let before = snr(&c, &n);
    normalize_batch(&mut c);
    normalize_batch(&mut n);
    let after = snr(&c, &n);
    assert!(
        after > before,
        "normalization should improve SNR ({before} → {after})"
    );
}

#[test]
fn noise_injected_training_is_finite_and_learns() {
    let dataset = build(Task::Mnist2, &TaskConfig::small(4));
    let device = presets::belem();
    let mut qnn = Qnn::for_device(QnnConfig::standard(16, 2, 2, 2), &device, 9).unwrap();
    let report = train(
        &mut qnn,
        &dataset,
        &TrainOptions {
            adam: adam(25),
            batch_size: 32,
            pipeline: PipelineOptions {
                noise: NoiseSource::GateInsertion {
                    model: &device,
                    factor: 0.5,
                },
                readout: Some(&device),
                normalize: true,
                quantize: Some(QuantizeSpec::levels(6)),
                quant_penalty: 0.05,
                process_last: false,
            },
            seed: 9,
        },
    )
    .unwrap();
    let first = report.history.first().unwrap().train_loss;
    let last = report.history.last().unwrap().train_loss;
    assert!(last.is_finite() && first.is_finite());
    assert!(last < first, "injected training should reduce loss");
}

#[test]
fn ten_qubit_model_trains_and_deploys_on_melbourne() {
    // Exercises the 6×6 encoder, the 10-qubit register, routing onto the
    // 15-qubit ladder and the trajectory emulator.
    let cfg = TaskConfig {
        n_train: 24,
        n_valid: 12,
        n_test: 12,
        seed: 1,
    };
    let dataset = build(Task::Mnist10, &cfg);
    let device = presets::melbourne();
    let mut qnn = Qnn::for_device(QnnConfig::standard(36, 10, 2, 2), &device, 2).unwrap();
    train(
        &mut qnn,
        &dataset,
        &TrainOptions {
            adam: adam(3),
            batch_size: 12,
            pipeline: PipelineOptions {
                normalize: true,
                quantize: None,
                quant_penalty: 0.0,
                ..PipelineOptions::baseline()
            },
            seed: 2,
        },
    )
    .unwrap();
    let dep = qnn.deploy(&device, 2).unwrap();
    let feats: Vec<Vec<f64>> = dataset.test.iter().map(|s| s.features.clone()).collect();
    let labels: Vec<usize> = dataset.test.iter().map(|s| s.label).collect();
    let mut rng = StdRng::seed_from_u64(3);
    let result = infer(
        &qnn,
        &feats,
        &InferenceBackend::Hardware(&dep),
        &InferenceOptions {
            normalize: NormMode::BatchStats,
            quantize: None,
            process_last: false,
        },
        &mut rng,
    )
    .unwrap();
    assert_eq!(result.logits.len(), 12);
    assert_eq!(result.logits[0].len(), 10);
    let acc = result.accuracy(&labels);
    assert!((0.0..=1.0).contains(&acc));
}

#[test]
fn batched_deployment_matches_direct_and_survives_faults() {
    use quantumnat::core::executor::RetryPolicy;
    use quantumnat::core::infer::InferenceOptions;
    use quantumnat::noise::fault::FaultSpec;

    let device = presets::santiago();
    let qnn = Qnn::for_device(QnnConfig::standard(16, 4, 1, 2), &device, 8).unwrap();
    let feats: Vec<Vec<f64>> = (0..8)
        .map(|i| (0..16).map(|k| ((i * 16 + k) as f64 * 0.29).sin().abs()).collect())
        .collect();
    let mut rng = StdRng::seed_from_u64(7);

    // Fault-free, exact expectations: the pooled batch path reproduces the
    // direct emulator deployment bit-for-bit.
    let dep = qnn.deploy(&device, 2).unwrap();
    let direct = infer(
        &qnn,
        &feats,
        &InferenceBackend::Hardware(&dep),
        &InferenceOptions::baseline(),
        &mut rng,
    )
    .unwrap();
    let pooled = qnn
        .deploy_batch(&device, 2, RetryPolicy::default(), None, 4, 0)
        .unwrap();
    let batched = infer(
        &qnn,
        &feats,
        &InferenceBackend::Batch(&pooled),
        &InferenceOptions::baseline(),
        &mut rng,
    )
    .unwrap();
    for (a, b) in direct
        .block_outputs
        .iter()
        .flatten()
        .flatten()
        .zip(batched.block_outputs.iter().flatten().flatten())
    {
        assert!((a - b).abs() < 1e-12, "{a} vs {b}");
    }

    // Under injected transient faults the pooled path still completes,
    // reports its retries, and stays invariant to the worker count.
    let run = |workers: usize| {
        let dep = qnn
            .deploy_batch(
                &device,
                2,
                RetryPolicy::default(),
                Some(FaultSpec::transient(0.3, 13)),
                workers,
                99,
            )
            .unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        infer(
            &qnn,
            &feats,
            &InferenceBackend::Batch(&dep),
            &InferenceOptions::baseline(),
            &mut rng,
        )
        .unwrap()
    };
    let serial = run(1);
    let parallel = run(4);
    assert_eq!(serial.logits, parallel.logits);
    let report = parallel.report.expect("batch runs carry a report");
    assert_eq!(serial.report, Some(report.clone()));
    assert!(report.retries > 0, "30% transient faults should retry");
    assert_eq!(report.jobs, feats.len());
}

#[test]
fn noise_model_serde_round_trips_through_deployment() {
    // Serialize a device model (as Qiskit would ship it), parse it back,
    // and use it for deployment.
    let json = presets::lima().to_json();
    let device = quantumnat::noise::DeviceModel::from_json(&json).unwrap();
    let qnn = Qnn::for_device(QnnConfig::standard(16, 4, 1, 2), &device, 4).unwrap();
    let dep = qnn.deploy(&device, 2).unwrap();
    let mut rng = StdRng::seed_from_u64(5);
    let out = infer(
        &qnn,
        &[vec![0.5; 16]],
        &InferenceBackend::Hardware(&dep),
        &InferenceOptions::baseline(),
        &mut rng,
    )
    .unwrap();
    assert!(out.logits[0].iter().all(|v| v.is_finite()));
}

#[test]
fn cross_device_deployment_uses_target_topology() {
    // A model routed for Santiago (line) deploys on Yorktown (bowtie):
    // the deployment path must re-route for the target device.
    let qnn = Qnn::for_device(
        QnnConfig::standard(16, 4, 1, 2),
        &presets::santiago(),
        6,
    )
    .unwrap();
    for target in [presets::yorktown(), presets::belem(), presets::melbourne()] {
        let dep = qnn.deploy(&target, 2).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let out = infer(
            &qnn,
            &[vec![0.3; 16], vec![0.7; 16]],
            &InferenceBackend::Hardware(&dep),
            &InferenceOptions::baseline(),
            &mut rng,
        )
        .unwrap();
        assert!(
            out.logits.iter().flatten().all(|v| v.is_finite()),
            "deployment on {} produced non-finite logits",
            target.name()
        );
    }
}
